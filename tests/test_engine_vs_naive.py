"""End-to-end equivalence tests: optimizer + executor versus the naive oracle.

Every workload query of the paper (SQ, MR, MF families) is run through the
full stack — DP optimizer with index selection, then the batch executor —
under several index configurations, and the match counts are compared with
the naive backtracking matcher.  Counts are a complete check here because the
matching semantics (homomorphisms over vertices and edges) makes the number
of matches sensitive to any lost or duplicated binding.
"""

import pytest

from repro import Database, Direction, IndexConfig
from repro.bench.harness import config_d, config_dp, config_ds, vpt_view_and_config
from repro.query.naive import NaiveMatcher
from repro.workloads import fraud, labelled_subgraph, magicrecs


# ----------------------------------------------------------------------
# labelled subgraph queries (Table II workload)
# ----------------------------------------------------------------------
SQ_SUBSET = ["SQ1", "SQ3", "SQ4", "SQ6", "SQ7", "SQ11"]


@pytest.fixture(scope="module")
def sq_queries():
    return labelled_subgraph.build_workload(3, 2, names=SQ_SUBSET)


@pytest.fixture(scope="module")
def sq_oracle_counts(labelled_graph, sq_queries):
    oracle = NaiveMatcher(labelled_graph)
    return {name: oracle.count(query) for name, query in sq_queries.items()}


class TestLabelledSubgraphQueries:
    @pytest.mark.parametrize("config_name", ["D", "Ds", "Dp"])
    def test_counts_match_oracle_under_all_primary_configs(
        self, labelled_graph, sq_queries, sq_oracle_counts, config_name
    ):
        config = {"D": config_d(), "Ds": config_ds(), "Dp": config_dp()}[config_name]
        db = Database(labelled_graph, primary_config=config)
        for name, query in sq_queries.items():
            assert db.count(query) == sq_oracle_counts[name], name

    def test_dp_plans_use_nbr_label_partition(self, labelled_graph, sq_queries):
        db = Database(labelled_graph, primary_config=config_dp())
        plan = db.plan(sq_queries["SQ4"])
        # With Dp every leg can address (edge label, nbr label) sub-lists, so
        # there must be no residual label filters left in the plan text.
        assert "label" not in plan.describe().lower() or "filter" not in plan.describe().lower()


# ----------------------------------------------------------------------
# MagicRecs queries (Table III workload)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def mr_queries(social_graph):
    return magicrecs.build_workload(social_graph, selectivity=0.1)


@pytest.fixture(scope="module")
def mr_oracle_counts(social_graph, mr_queries):
    oracle = NaiveMatcher(social_graph)
    return {name: oracle.count(query) for name, query in mr_queries.items()}


class TestMagicRecsQueries:
    def test_counts_under_default_config(self, social_graph, mr_queries, mr_oracle_counts):
        db = Database(social_graph)
        for name, query in mr_queries.items():
            assert db.count(query) == mr_oracle_counts[name], name

    def test_counts_with_vpt_index(self, social_graph, mr_queries, mr_oracle_counts):
        db = Database(social_graph)
        view, config = vpt_view_and_config()
        db.create_vertex_index(view, directions=(Direction.FORWARD,), config=config, name="VPt")
        for name, query in mr_queries.items():
            assert db.count(query) == mr_oracle_counts[name], name

    def test_vpt_plan_uses_secondary_index_and_sorted_filter(
        self, social_graph, mr_queries
    ):
        db = Database(social_graph)
        view, config = vpt_view_and_config()
        db.create_vertex_index(view, directions=(Direction.FORWARD,), config=config, name="VPt")
        plan = db.plan(mr_queries["MR1"])
        assert plan.uses_index("VPt")
        assert "sorted eadj.time" in plan.describe()

    def test_vpt_reduces_entries_fetched(self, social_graph, mr_queries):
        """The D+VPt benefit: fewer predicate evaluations on the time filter."""
        base = Database(social_graph)
        tuned = Database(social_graph)
        view, config = vpt_view_and_config()
        tuned.create_vertex_index(
            view, directions=(Direction.FORWARD,), config=config, name="VPt"
        )
        query = mr_queries["MR1"]
        base_result = base.run(query)
        tuned_result = tuned.run(query)
        assert tuned_result.count == base_result.count
        assert (
            tuned_result.stats.predicate_evaluations
            < base_result.stats.predicate_evaluations
        )


# ----------------------------------------------------------------------
# fraud queries (Table IV workload)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def mf_queries(financial_graph):
    return fraud.build_workload(financial_graph, selectivity=0.1)


@pytest.fixture(scope="module")
def mf_oracle_counts(financial_graph, mf_queries):
    oracle = NaiveMatcher(financial_graph)
    return {name: oracle.count(query) for name, query in mf_queries.items()}


def fraud_database(graph, with_vpc=False, with_epc=False, selectivity=0.1):
    db = Database(graph)
    if with_vpc:
        view, config = fraud.vpc_view_and_config()
        db.create_vertex_index(
            view,
            directions=(Direction.FORWARD, Direction.BACKWARD),
            config=config,
            name="VPc",
        )
    if with_epc:
        alpha = fraud.amount_alpha(graph, selectivity)
        view, config = fraud.epc_view_and_config(alpha)
        db.create_edge_index(view, config=config, name="EPc")
    return db


class TestFraudQueries:
    def test_counts_under_default_config(self, financial_graph, mf_queries, mf_oracle_counts):
        db = fraud_database(financial_graph)
        for name, query in mf_queries.items():
            assert db.count(query) == mf_oracle_counts[name], name

    def test_counts_with_vpc(self, financial_graph, mf_queries, mf_oracle_counts):
        db = fraud_database(financial_graph, with_vpc=True)
        for name, query in mf_queries.items():
            assert db.count(query) == mf_oracle_counts[name], name

    def test_counts_with_vpc_and_epc(self, financial_graph, mf_queries, mf_oracle_counts):
        db = fraud_database(financial_graph, with_vpc=True, with_epc=True)
        for name, query in mf_queries.items():
            assert db.count(query) == mf_oracle_counts[name], name

    def test_vpc_enables_multi_extend_plan(self, financial_graph, mf_queries):
        base = fraud_database(financial_graph)
        tuned = fraud_database(financial_graph, with_vpc=True)
        base_plan = base.plan(mf_queries["MF1"])
        tuned_plan = tuned.plan(mf_queries["MF1"])
        assert "MULTI-EXTEND" not in base_plan.describe()
        assert "MULTI-EXTEND" in tuned_plan.describe()
        assert tuned_plan.uses_index("VPc-fw") or tuned_plan.uses_index("VPc-bw")

    def test_epc_used_for_money_flow_path(self, financial_graph, mf_queries):
        tuned = fraud_database(financial_graph, with_vpc=True, with_epc=True)
        plan = tuned.plan(mf_queries["MF5"])
        assert plan.uses_index("EPc")

    def test_epc_reduces_intermediate_rows(self, financial_graph, mf_queries):
        base = fraud_database(financial_graph)
        tuned = fraud_database(financial_graph, with_vpc=True, with_epc=True)
        query = mf_queries["MF5"]
        base_result = base.run(query)
        tuned_result = tuned.run(query)
        assert tuned_result.count == base_result.count
        assert (
            tuned_result.stats.intermediate_rows <= base_result.stats.intermediate_rows
        )
