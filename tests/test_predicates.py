"""Tests for the predicate AST: evaluation, renaming, subsumption."""

import numpy as np
import pytest

from repro.errors import QueryParseError
from repro.predicates import (
    CompareOp,
    Comparison,
    Constant,
    Predicate,
    PropertyRef,
    cmp,
    comparison_subsumes,
    const,
    predicate_subsumes,
    prop,
    residual_conjuncts,
)


class TestComparisonBasics:
    def test_cmp_builder_and_describe(self):
        comparison = cmp(prop("a", "amt"), ">", 10)
        assert comparison.op is CompareOp.GT
        assert "a.amt > 10" in comparison.describe()

    def test_unknown_operator_raises(self):
        with pytest.raises(QueryParseError):
            cmp(prop("a", "amt"), "~", 10)

    def test_flipped_operator(self):
        assert CompareOp.LT.flipped is CompareOp.GT
        assert CompareOp.EQ.flipped is CompareOp.EQ

    def test_normalized_moves_reference_left(self):
        comparison = Comparison(const(5), CompareOp.LT, prop("a", "amt"))
        normalized = comparison.normalized()
        assert isinstance(normalized.left, PropertyRef)
        assert normalized.op is CompareOp.GT

    def test_normalized_orders_cross_variable_refs(self):
        first = cmp(prop("e2", "amt"), "<", prop("e1", "amt"))
        second = cmp(prop("e1", "amt"), ">", prop("e2", "amt"))
        assert first.normalized() == second.normalized()

    def test_normalized_cross_variable_with_offset(self):
        # e2.amt < e1.amt + 5   <=>   e1.amt > e2.amt - 5
        first = cmp(prop("e2", "amt"), "<", prop("e1", "amt"), offset=5.0)
        flipped = first.normalized()
        assert flipped.left == prop("e1", "amt")
        assert flipped.op is CompareOp.GT
        assert flipped.offset == -5.0

    def test_renamed(self):
        comparison = cmp(prop("eadj", "amt"), "<", prop("eb", "amt"))
        renamed = comparison.renamed({"eadj": "edge", "eb": "bound_edge"})
        assert renamed.variables() == {"edge", "bound_edge"}

    def test_variables_and_flags(self):
        cross = cmp(prop("a", "city"), "=", prop("b", "city"))
        assert cross.is_cross_variable
        assert cross.variables() == {"a", "b"}
        constant = cmp(prop("a", "city"), "=", "SF")
        assert constant.is_constant_comparison


class TestEvaluation:
    def test_scalar_evaluation_on_graph(self, example_graph):
        alice = None
        for vertex in range(example_graph.num_vertices):
            if example_graph.vertex_props.value(vertex, "name") == "Alice":
                alice = vertex
        predicate = Predicate.of(cmp(prop("c", "name"), "=", "Alice"))
        assert predicate.evaluate(example_graph, {"c": ("vertex", alice)})
        other = (alice + 1) % example_graph.num_vertices
        assert not predicate.evaluate(example_graph, {"c": ("vertex", other)})

    def test_cross_variable_evaluation(self, example_graph):
        predicate = Predicate.of(cmp(prop("e1", "date"), "<", prop("e2", "date")))
        transfers = [
            e
            for e in range(example_graph.num_edges)
            if example_graph.edge_label_name(e) in ("Wire", "DirDeposit")
        ]
        early, late = transfers[0], transfers[-1]
        binding = {"e1": ("edge", early), "e2": ("edge", late)}
        assert predicate.evaluate(example_graph, binding)
        binding = {"e1": ("edge", late), "e2": ("edge", early)}
        assert not predicate.evaluate(example_graph, binding)

    def test_offset_evaluation(self, example_graph):
        transfers = [
            e
            for e in range(example_graph.num_edges)
            if example_graph.edge_label_name(e) in ("Wire", "DirDeposit")
        ]
        amounts = {e: example_graph.edge_property(e, "amt") for e in transfers}
        e_small = min(amounts, key=amounts.get)
        e_big = max(amounts, key=amounts.get)
        # big < small + offset holds only for a large enough offset.
        small_gap = cmp(prop("a", "amt"), "<", prop("b", "amt"), offset=1.0)
        big_gap = cmp(prop("a", "amt"), "<", prop("b", "amt"), offset=1e6)
        binding = {"a": ("edge", e_big), "b": ("edge", e_small)}
        assert not Predicate.of(small_gap).evaluate(example_graph, binding)
        assert Predicate.of(big_gap).evaluate(example_graph, binding)

    def test_null_comparisons_are_false(self, example_graph):
        # Owns edges have no amt property.
        owns = [
            e
            for e in range(example_graph.num_edges)
            if example_graph.edge_label_name(e) == "Owns"
        ]
        predicate = Predicate.of(cmp(prop("e", "amt"), ">", 0))
        assert not predicate.evaluate(example_graph, {"e": ("edge", owns[0])})

    def test_bulk_evaluation_matches_scalar(self, example_graph):
        predicate = Predicate.of(
            cmp(prop("e", "amt"), ">", 50), cmp(prop("e", "currency"), "=", "USD")
        )
        edges = np.arange(example_graph.num_edges)
        mask = predicate.evaluate_bulk(example_graph, {}, {"e": ("edge", edges)})
        for edge in range(example_graph.num_edges):
            scalar = predicate.evaluate(example_graph, {"e": ("edge", edge)})
            assert bool(mask[edge]) == scalar

    def test_bulk_with_fixed_variable(self, example_graph):
        predicate = Predicate.of(cmp(prop("v", "city"), "=", prop("w", "city")))
        vertices = np.arange(5)  # accounts v1..v5 are ids 0..4
        mask = predicate.evaluate_bulk(
            example_graph, {"w": ("vertex", 0)}, {"v": ("vertex", vertices)}
        )
        for vertex in range(5):
            scalar = predicate.evaluate(
                example_graph, {"v": ("vertex", vertex), "w": ("vertex", 0)}
            )
            assert bool(mask[vertex]) == scalar

    def test_bulk_requires_an_array(self, example_graph):
        with pytest.raises(QueryParseError):
            Predicate.true().evaluate_bulk(example_graph, {}, {})

    def test_label_comparison_with_name(self, example_graph):
        predicate = Predicate.of(cmp(prop("v", "label"), "=", "Customer"))
        vertices = np.arange(example_graph.num_vertices)
        mask = predicate.evaluate_bulk(example_graph, {}, {"v": ("vertex", vertices)})
        assert mask.sum() == 3


class TestPredicateStructure:
    def test_true_predicate(self):
        assert Predicate.true().is_true
        assert Predicate.true().describe() == "TRUE"

    def test_and_also_and_restriction(self):
        p = Predicate.of(cmp(prop("a", "x"), ">", 1)).and_also(
            Predicate.of(cmp(prop("b", "y"), "<", 2))
        )
        assert len(p.conjuncts()) == 2
        restricted = p.restricted_to({"a"})
        assert len(restricted.conjuncts()) == 1

    def test_without(self):
        c1 = cmp(prop("a", "x"), ">", 1)
        c2 = cmp(prop("b", "y"), "<", 2)
        p = Predicate.of(c1, c2)
        assert p.without([c1]).conjuncts() == [c2]

    def test_equality_and_hash(self):
        p1 = Predicate.of(cmp(prop("a", "x"), ">", 1))
        p2 = Predicate.of(cmp(prop("a", "x"), ">", 1))
        assert p1 == p2
        assert hash(p1) == hash(p2)


class TestSubsumption:
    def test_exact_match_subsumes(self):
        a = cmp(prop("e", "currency"), "=", "USD")
        b = cmp(prop("e", "currency"), "=", "USD")
        assert comparison_subsumes(a, b)

    def test_range_subsumption(self):
        index_comp = cmp(prop("e", "amt"), ">", 10000)
        query_comp = cmp(prop("e", "amt"), ">", 15000)
        assert comparison_subsumes(index_comp, query_comp)
        assert not comparison_subsumes(query_comp, index_comp)

    def test_range_subsumption_less_than(self):
        index_comp = cmp(prop("e", "amt"), "<", 100)
        query_comp = cmp(prop("e", "amt"), "<", 50)
        assert comparison_subsumes(index_comp, query_comp)
        assert not comparison_subsumes(query_comp, index_comp)

    def test_equality_implies_range(self):
        index_comp = cmp(prop("e", "amt"), ">", 10)
        query_comp = cmp(prop("e", "amt"), "=", 50)
        assert comparison_subsumes(index_comp, query_comp)
        query_below = cmp(prop("e", "amt"), "=", 5)
        assert not comparison_subsumes(index_comp, query_below)

    def test_boundary_strictness(self):
        ge = cmp(prop("e", "amt"), ">=", 10)
        gt = cmp(prop("e", "amt"), ">", 10)
        assert comparison_subsumes(ge, gt)
        assert not comparison_subsumes(gt, ge)

    def test_different_properties_do_not_subsume(self):
        a = cmp(prop("e", "amt"), ">", 10)
        b = cmp(prop("e", "date"), ">", 10)
        assert not comparison_subsumes(a, b)

    def test_cross_variable_subsumption_via_normalization(self):
        view = cmp(prop("eadj", "amt"), "<", prop("eb", "amt"))
        query = cmp(prop("eb", "amt"), ">", prop("eadj", "amt"))
        assert comparison_subsumes(view, query)

    def test_predicate_subsumes_requires_all_index_conjuncts(self):
        index_pred = Predicate.of(
            cmp(prop("e", "currency"), "=", "USD"), cmp(prop("e", "amt"), ">", 100)
        )
        query_pred = Predicate.of(
            cmp(prop("e", "currency"), "=", "USD"),
            cmp(prop("e", "amt"), ">", 500),
            cmp(prop("e", "date"), "<", 10),
        )
        assert predicate_subsumes(index_pred, query_pred)
        weaker_query = Predicate.of(cmp(prop("e", "currency"), "=", "USD"))
        assert not predicate_subsumes(index_pred, weaker_query)

    def test_empty_index_predicate_subsumes_everything(self):
        assert predicate_subsumes(Predicate.true(), Predicate.of(cmp(prop("a", "x"), ">", 1)))

    def test_residual_conjuncts(self):
        index_pred = Predicate.of(cmp(prop("e", "amt"), ">", 100))
        query_pred = Predicate.of(
            cmp(prop("e", "amt"), ">", 500), cmp(prop("e", "date"), "<", 10)
        )
        residual = residual_conjuncts(index_pred, query_pred)
        assert len(residual) == 2
        exact_query = Predicate.of(cmp(prop("e", "amt"), ">", 100))
        assert residual_conjuncts(index_pred, exact_query) == []
