"""Unit tests for the morsel splitters (:mod:`repro.query.morsels`).

The invariant every splitter must uphold: the returned ranges are an exact
partition of the requested ``[lo, hi)`` domain — ascending, non-empty,
covering every vertex exactly once — because the dispatcher's determinism
contract (per-morsel outputs concatenated in range order == serial output)
relies on nothing else.  The degree-weighted splitter additionally promises
balance: per-range weight sums stay within one vertex's weight of the ideal
``total/target`` budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import GraphBuilder
from repro.index.primary import PrimaryIndex
from repro.query import QueryGraph
from repro.query.executor import MorselExecutor
from repro.query.morsels import degree_weighted_ranges, even_ranges, ranges_of_size


def assert_exact_partition(ranges, lo, hi):
    """Ranges cover ``[lo, hi)`` in order with no overlap, gap, or empties."""
    assert ranges, f"no ranges for domain [{lo}, {hi})"
    assert ranges[0][0] == lo
    assert ranges[-1][1] == hi
    for start, stop in ranges:
        assert start < stop, f"empty range ({start}, {stop})"
    for (_, prev_stop), (next_start, _) in zip(ranges, ranges[1:]):
        assert prev_stop == next_start, "overlap or gap between ranges"
    assert sum(stop - start for start, stop in ranges) == hi - lo


class TestEvenRanges:
    def test_exact_partition(self):
        assert_exact_partition(even_ranges(0, 100, 7), 0, 100)
        assert_exact_partition(even_ranges(13, 57, 4), 13, 57)

    def test_empty_domain(self):
        assert even_ranges(5, 5, 4) == []
        assert even_ranges(9, 3, 4) == []

    def test_fewer_vertices_than_target(self):
        ranges = even_ranges(0, 3, 16)
        assert_exact_partition(ranges, 0, 3)
        assert len(ranges) == 3  # one vertex per range, never empty ranges

    def test_ranges_of_size(self):
        ranges = ranges_of_size(10, 35, 10)
        assert ranges == [(10, 20), (20, 30), (30, 35)]


class TestDegreeWeightedRanges:
    def test_all_zero_degree_falls_back_to_even(self):
        """Zero adjacency work everywhere: the scan-cost baseline (or the
        even fallback) still partitions by vertex count."""
        weights = np.zeros(40)
        ranges = degree_weighted_ranges(0, 40, 4, weights)
        assert_exact_partition(ranges, 0, 40)
        # With the all-zero signal the splitter falls back to even counts.
        assert [stop - start for start, stop in ranges] == [10, 10, 10, 10]

    def test_uniform_weights_match_even_split(self):
        ranges = degree_weighted_ranges(0, 64, 8, np.ones(64))
        assert_exact_partition(ranges, 0, 64)
        assert [stop - start for start, stop in ranges] == [8] * 8

    def test_super_hub_is_isolated(self):
        """One vertex carrying most of the work gets its own tiny range."""
        weights = np.ones(100)
        weights[37] = 10_000.0
        ranges = degree_weighted_ranges(0, 100, 8, weights)
        assert_exact_partition(ranges, 0, 100)
        hub_ranges = [r for r in ranges if r[0] <= 37 < r[1]]
        assert len(hub_ranges) == 1
        start, stop = hub_ranges[0]
        # The hub absorbed every cut target; dedup collapses them so the hub
        # sits alone in a single-vertex range.
        assert (start, stop) == (37, 38)

    def test_fewer_vertices_than_workers(self):
        ranges = degree_weighted_ranges(0, 3, 16, np.asarray([1.0, 2.0, 3.0]))
        assert_exact_partition(ranges, 0, 3)
        assert len(ranges) <= 3

    def test_balance_within_one_vertex_of_ideal(self):
        rng = np.random.default_rng(7)
        weights = rng.zipf(1.5, size=500).astype(np.float64)
        target = 16
        ranges = degree_weighted_ranges(0, 500, target, weights)
        assert_exact_partition(ranges, 0, 500)
        ideal = weights.sum() / target
        for start, stop in ranges:
            span = weights[start:stop]
            # A range can exceed the budget only through its last vertex
            # (boundaries cut right after the vertex crossing the goal).
            assert span.sum() <= ideal + span[-1] + 1e-9

    def test_sub_domain_offsets_respected(self):
        weights = np.arange(1, 21, dtype=np.float64)
        ranges = degree_weighted_ranges(30, 50, 5, weights)
        assert_exact_partition(ranges, 30, 50)

    def test_weight_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            degree_weighted_ranges(0, 10, 4, np.ones(9))

    def test_empty_domain(self):
        assert degree_weighted_ranges(4, 4, 8, np.zeros(0)) == []


class TestExecutorIntegration:
    """Degree weights read off a hand-built graph's primary CSR offsets."""

    @staticmethod
    def _star_graph(num_spokes=30):
        builder = GraphBuilder()
        hub = builder.add_vertex("V")
        spokes = [builder.add_vertex("V") for _ in range(num_spokes)]
        for spoke in spokes:
            builder.add_edge(hub, spoke, "E")
        return builder.build()

    @staticmethod
    def _one_leg_plan(db):
        query = QueryGraph("star")
        query.add_vertex("a")
        query.add_vertex("b")
        query.add_edge("a", "b", name="e0")
        return db.plan(query)

    def test_csr_vertex_degrees_match_bincount(self):
        graph = self._star_graph()
        primary = PrimaryIndex(graph)
        degrees = primary.forward.vertex_degrees(0, graph.num_vertices)
        expected = np.bincount(graph.edge_src, minlength=graph.num_vertices)
        assert np.array_equal(degrees, expected)
        # Sub-range reads line up with the full-domain read.
        assert np.array_equal(primary.forward.vertex_degrees(5, 12), expected[5:12])

    def test_star_graph_hub_isolated_by_executor_ranges(self):
        from repro import Database

        graph = self._star_graph()
        db = Database(graph)
        plan = self._one_leg_plan(db)
        executor = MorselExecutor(db.graph, num_workers=4, weighting="degree")
        ranges = executor.morsel_ranges(plan)
        assert_exact_partition(ranges, 0, graph.num_vertices)
        # The hub (vertex 0) carries all the adjacency work: its range must
        # not drag a big tail of spokes along with it.
        assert ranges[0] == (0, 1)

    def test_even_weighting_ignores_degrees(self):
        from repro import Database

        graph = self._star_graph()
        db = Database(graph)
        plan = self._one_leg_plan(db)
        executor = MorselExecutor(db.graph, num_workers=4, weighting="even")
        ranges = executor.morsel_ranges(plan)
        assert_exact_partition(ranges, 0, graph.num_vertices)
        sizes = {stop - start for start, stop in ranges[:-1]}
        assert len(sizes) == 1  # equal vertex counts, hub or not

    def test_explicit_morsel_size_beats_weighting(self):
        from repro import Database

        graph = self._star_graph()
        db = Database(graph)
        plan = self._one_leg_plan(db)
        executor = MorselExecutor(
            db.graph, num_workers=4, morsel_size=7, weighting="degree"
        )
        ranges = executor.morsel_ranges(plan)
        assert_exact_partition(ranges, 0, graph.num_vertices)
        assert all(stop - start <= 7 for start, stop in ranges)
