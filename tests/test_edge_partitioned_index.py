"""Tests for secondary edge-partitioned A+ indexes (2-hop views)."""

import numpy as np
import pytest

from repro.errors import IndexConfigError
from repro.graph import EdgeAdjacencyType
from repro.index.config import IndexConfig
from repro.index.edge_partitioned import EdgePartitionedIndex
from repro.index.primary import PrimaryIndex
from repro.index.views import TwoHopView
from repro.predicates import Predicate, cmp, prop
from repro.storage.partition_keys import PartitionKey
from repro.storage.sort_keys import SortKey


def money_flow_view(adjacency=EdgeAdjacencyType.DST_FW, alpha=None):
    conjuncts = [
        cmp(prop("eb", "date"), "<", prop("eadj", "date")),
        cmp(prop("eb", "amt"), ">", prop("eadj", "amt")),
    ]
    if alpha is not None:
        conjuncts.append(cmp(prop("eb", "amt"), "<", prop("eadj", "amt"), offset=alpha))
    return TwoHopView("MoneyFlow", adjacency, Predicate(conjuncts))


def expected_pairs(graph, adjacency, predicate):
    """Brute-force enumeration of qualifying (bound edge, adjacent edge) pairs."""
    pairs = set()
    for eb in range(graph.num_edges):
        if adjacency.bound_endpoint_is_destination:
            shared = int(graph.edge_dst[eb])
        else:
            shared = int(graph.edge_src[eb])
        for eadj in range(graph.num_edges):
            if eadj == eb:
                continue
            if adjacency.adjacency_direction.value == "fw":
                if int(graph.edge_src[eadj]) != shared:
                    continue
                nbr = int(graph.edge_dst[eadj])
            else:
                if int(graph.edge_dst[eadj]) != shared:
                    continue
                nbr = int(graph.edge_src[eadj])
            binding = {
                "eb": ("edge", eb),
                "eadj": ("edge", eadj),
                "vnbr": ("vertex", nbr),
                "vs": ("vertex", int(graph.edge_src[eb])),
                "vd": ("vertex", int(graph.edge_dst[eb])),
            }
            if predicate.evaluate(graph, binding):
                pairs.add((eb, eadj))
    return pairs


class TestTwoHopViewValidation:
    def test_predicate_must_relate_both_edges(self):
        with pytest.raises(IndexConfigError):
            TwoHopView(
                "Redundant",
                EdgeAdjacencyType.DST_FW,
                Predicate.of(cmp(prop("eadj", "amt"), "<", 10000)),
            )

    def test_unknown_variable_rejected(self):
        with pytest.raises(IndexConfigError):
            TwoHopView(
                "bad",
                EdgeAdjacencyType.DST_FW,
                Predicate.of(cmp(prop("eb", "amt"), ">", prop("zz", "amt"))),
            )

    def test_adjacency_direction_mapping(self):
        assert EdgeAdjacencyType.DST_FW.adjacency_direction.value == "fw"
        assert EdgeAdjacencyType.DST_BW.adjacency_direction.value == "bw"
        assert EdgeAdjacencyType.SRC_FW.adjacency_direction.value == "bw"
        assert EdgeAdjacencyType.SRC_BW.adjacency_direction.value == "fw"


class TestEdgePartitionedContents:
    @pytest.mark.parametrize(
        "adjacency",
        [
            EdgeAdjacencyType.DST_FW,
            EdgeAdjacencyType.DST_BW,
            EdgeAdjacencyType.SRC_FW,
            EdgeAdjacencyType.SRC_BW,
        ],
    )
    def test_contents_match_bruteforce(self, example_graph, adjacency):
        primary = PrimaryIndex(example_graph)
        view = money_flow_view(adjacency)
        index = EdgePartitionedIndex(
            example_graph, view, IndexConfig.flat(), primary
        )
        expected = expected_pairs(example_graph, adjacency, view.predicate)
        actual = set()
        for eb in range(example_graph.num_edges):
            edges, _ = index.list(eb)
            for eadj in edges:
                actual.add((eb, int(eadj)))
        assert actual == expected

    def test_neighbour_ids_are_correct(self, example_graph):
        primary = PrimaryIndex(example_graph)
        view = money_flow_view()
        index = EdgePartitionedIndex(example_graph, view, IndexConfig.flat(), primary)
        for eb in range(example_graph.num_edges):
            edges, nbrs = index.list(eb)
            for eadj, nbr in zip(edges, nbrs):
                assert int(example_graph.edge_dst[int(eadj)]) == int(nbr)
                assert int(example_graph.edge_src[int(eadj)]) == int(
                    example_graph.edge_dst[eb]
                )

    def test_partitioning_and_sorting(self, financial_graph):
        primary = PrimaryIndex(financial_graph)
        alpha = 200.0
        view = money_flow_view(alpha=alpha)
        config = IndexConfig(
            partition_keys=(PartitionKey.nbr_property("acc"),),
            sort_keys=(SortKey.nbr_property("city"), SortKey.neighbour_id()),
        )
        index = EdgePartitionedIndex(financial_graph, view, config, primary)
        acc = financial_graph.vertex_props.column("acc")
        city = financial_graph.vertex_props.column("city")
        checked = 0
        for eb in range(0, financial_graph.num_edges, 17):
            for acc_value in ("CQ", "SV"):
                edges, nbrs = index.list(eb, [acc_value])
                code = financial_graph.schema.vertex_property("acc").code_of(acc_value)
                assert all(acc[n] == code for n in nbrs)
                cities = city[nbrs]
                assert list(cities) == sorted(cities)
                checked += len(edges)
        assert index.num_indexed_edges > 0

    def test_alpha_reduces_index_size(self, financial_graph):
        primary = PrimaryIndex(financial_graph)
        without_cut = EdgePartitionedIndex(
            financial_graph, money_flow_view(), IndexConfig.flat(), primary
        )
        with_cut = EdgePartitionedIndex(
            financial_graph, money_flow_view(alpha=50.0), IndexConfig.flat(), primary
        )
        assert with_cut.num_indexed_edges < without_cut.num_indexed_edges

    def test_memory_breakdown_uses_offsets_not_id_lists(self, financial_graph):
        primary = PrimaryIndex(financial_graph)
        index = EdgePartitionedIndex(
            financial_graph, money_flow_view(alpha=100.0), IndexConfig.flat(), primary
        )
        breakdown = index.memory_breakdown()
        assert breakdown.id_list_bytes == 0
        assert breakdown.offset_list_bytes == index.offset_lists.nbytes()
        if index.num_indexed_edges:
            assert breakdown.offset_list_bytes / index.num_indexed_edges <= 2.0

    def test_empty_view(self, example_graph):
        primary = PrimaryIndex(example_graph)
        never = TwoHopView(
            "never",
            EdgeAdjacencyType.DST_FW,
            Predicate.of(
                cmp(prop("eb", "amt"), "<", prop("eadj", "amt")),
                cmp(prop("eb", "amt"), ">", prop("eadj", "amt")),
            ),
        )
        index = EdgePartitionedIndex(example_graph, never, IndexConfig.flat(), primary)
        assert index.num_indexed_edges == 0
        for eb in range(example_graph.num_edges):
            edges, _ = index.list(eb)
            assert len(edges) == 0
