"""Canonical query fingerprints: invariance, separation, and hashing.

The plan cache (PR 10) keys on :meth:`QueryGraph.fingerprint` — a canonical
labeling of the pattern — so this suite pins the two properties the cache
depends on:

* **Invariance** — structurally identical patterns produce the *same*
  fingerprint (and compare equal / hash equal) no matter how they were
  spelled: variable names, vertex/edge insertion order, predicate conjunct
  order, and which way a comparison was written (``e1.amt < e2.amt + 5`` vs
  ``e2.amt > e1.amt - 5``) are all erased by canonicalization.
* **Separation** — any *semantic* difference (labels, edge direction, an
  extra edge, a different operator/constant/offset, or which of two parallel
  edges a predicate pins) produces a different fingerprint.  A collision
  here would silently serve the wrong plan.
"""

from __future__ import annotations

from repro.query import QueryGraph, cmp, prop


# ----------------------------------------------------------------------
# pattern builders (each spelled several equivalent ways)
# ----------------------------------------------------------------------
def _triangle(
    names=("a", "b", "c"),
    edge_names=("e1", "e2", "e3"),
    order=None,
    offset=5.0,
):
    """A directed Wire triangle a->b->c->a with an amt chain predicate."""
    a, b, c = names
    e1, e2, e3 = edge_names
    q = QueryGraph("triangle")
    for v in names:
        q.add_vertex(v, label="Account")
    edges = [(a, b, e1), (b, c, e2), (c, a, e3)]
    for idx in order or range(3):
        src, dst, name = edges[idx]
        q.add_edge(src, dst, label="Wire", name=name)
    q.add_predicate(cmp(prop(e1, "amt"), "<", prop(e2, "amt"), offset=offset))
    return q


def _owns(customer="c1", account="a1", edge="r1", name="owns"):
    q = QueryGraph(name)
    q.add_vertex(customer, label="Customer")
    q.add_vertex(account, label="Account")
    q.add_edge(customer, account, label="Owns", name=edge)
    return q


def _parallel(swap_predicate=False):
    """Two parallel Wire edges a->b told apart only by their predicate."""
    q = QueryGraph("parallel")
    q.add_vertex("a", label="Account")
    q.add_vertex("b", label="Account")
    q.add_edge("a", "b", label="Wire", name="e1")
    q.add_edge("a", "b", label="Wire", name="e2")
    lo, hi = ("e2", "e1") if swap_predicate else ("e1", "e2")
    q.add_predicate(cmp(prop(lo, "amt"), "<", prop(hi, "amt")))
    return q


# ----------------------------------------------------------------------
# invariance
# ----------------------------------------------------------------------
class TestInvariance:
    def test_variable_renaming(self):
        q1 = _triangle()
        q2 = _triangle(names=("x", "y", "z"), edge_names=("p", "q", "r"))
        assert q1.fingerprint() == q2.fingerprint()
        assert q1 == q2
        assert hash(q1) == hash(q2)

    def test_query_name_is_not_structural(self):
        assert _owns(name="first") == _owns(name="second")

    def test_edge_insertion_order(self):
        q1 = _triangle(order=[0, 1, 2])
        q2 = _triangle(order=[2, 0, 1])
        q3 = _triangle(order=[1, 2, 0])
        assert q1.fingerprint() == q2.fingerprint() == q3.fingerprint()

    def test_vertex_insertion_order(self):
        q1 = QueryGraph("v12")
        q1.add_vertex("c1", label="Customer")
        q1.add_vertex("a1", label="Account")
        q1.add_edge("c1", "a1", label="Owns", name="r1")

        q2 = QueryGraph("v21")
        q2.add_vertex("a1", label="Account")
        q2.add_vertex("c1", label="Customer")
        q2.add_edge("c1", "a1", label="Owns", name="r1")
        assert q1.fingerprint() == q2.fingerprint()

    def test_predicate_conjunct_order(self):
        def build(reverse):
            q = _owns()
            conjuncts = [
                cmp(prop("c1", "name"), "=", "Alice"),
                cmp(prop("a1", "balance"), ">", 100),
            ]
            if reverse:
                conjuncts.reverse()
            q.add_predicate(*conjuncts)
            return q

        assert build(False).fingerprint() == build(True).fingerprint()

    def test_flipped_comparison_spelling(self):
        """``e1.amt < e2.amt + 5`` and ``e2.amt > e1.amt - 5`` are one
        predicate; canonicalization reorients before encoding."""
        q1 = _triangle()
        q2 = QueryGraph("flipped")
        for v in ("a", "b", "c"):
            q2.add_vertex(v, label="Account")
        q2.add_edge("a", "b", label="Wire", name="e1")
        q2.add_edge("b", "c", label="Wire", name="e2")
        q2.add_edge("c", "a", label="Wire", name="e3")
        q2.add_predicate(cmp(prop("e2", "amt"), ">", prop("e1", "amt"), offset=-5.0))
        assert q1.fingerprint() == q2.fingerprint()

    def test_fingerprint_is_cached_and_invalidated(self):
        q = _owns()
        first = q.fingerprint()
        assert q.fingerprint() == first  # memoized path
        q.add_vertex("a2", label="Account")
        q.add_edge("c1", "a2", label="Owns", name="r2")
        assert q.fingerprint() != first  # mutation invalidated the memo

    def test_symmetric_pattern_terminates(self):
        """A 5-clique (120 automorphisms) canonicalizes fine under the cap."""
        q = QueryGraph("clique5")
        vs = [f"v{i}" for i in range(5)]
        for v in vs:
            q.add_vertex(v, label="Account")
        for i, u in enumerate(vs):
            for w in vs[i + 1 :]:
                q.add_edge(u, w, label="Wire")
        assert len(q.fingerprint()) == 64  # sha256 hex


# ----------------------------------------------------------------------
# separation — different queries never collide
# ----------------------------------------------------------------------
class TestSeparation:
    def test_vertex_label(self):
        q1 = _owns()
        q2 = QueryGraph("owns")
        q2.add_vertex("c1", label="Customer")
        q2.add_vertex("a1", label="Customer")  # label differs
        q2.add_edge("c1", "a1", label="Owns", name="r1")
        assert q1.fingerprint() != q2.fingerprint()
        assert q1 != q2

    def test_missing_label_differs_from_labelled(self):
        q1 = _owns()
        q2 = QueryGraph("owns")
        q2.add_vertex("c1", label="Customer")
        q2.add_vertex("a1")  # unlabelled
        q2.add_edge("c1", "a1", label="Owns", name="r1")
        assert q1.fingerprint() != q2.fingerprint()

    def test_edge_label(self):
        q1 = _owns()
        q2 = QueryGraph("owns")
        q2.add_vertex("c1", label="Customer")
        q2.add_vertex("a1", label="Account")
        q2.add_edge("c1", "a1", label="Wire", name="r1")
        assert q1.fingerprint() != q2.fingerprint()

    def test_edge_direction(self):
        q1 = _owns()
        q2 = QueryGraph("owns")
        q2.add_vertex("c1", label="Customer")
        q2.add_vertex("a1", label="Account")
        q2.add_edge("a1", "c1", label="Owns", name="r1")  # reversed
        assert q1.fingerprint() != q2.fingerprint()

    def test_extra_edge(self):
        q1 = _owns()
        q2 = _owns()
        q2.add_vertex("a2", label="Account")
        q2.add_edge("c1", "a2", label="Owns", name="r2")
        assert q1.fingerprint() != q2.fingerprint()

    def test_predicate_operator_constant_offset(self):
        base = _owns()
        base.add_predicate(cmp(prop("a1", "balance"), ">", 100))

        diff_op = _owns()
        diff_op.add_predicate(cmp(prop("a1", "balance"), ">=", 100))

        diff_const = _owns()
        diff_const.add_predicate(cmp(prop("a1", "balance"), ">", 200))

        no_pred = _owns()

        prints = {
            q.fingerprint() for q in (base, diff_op, diff_const, no_pred)
        }
        assert len(prints) == 4

        assert _triangle(offset=5.0).fingerprint() != _triangle(offset=7.0).fingerprint()

    def test_parallel_edges_distinguished_by_predicate(self):
        """Which of two parallel edges the predicate pins is structural:
        e1.amt < e2.amt names a different edge pair than e2.amt < e1.amt
        only through canonicalization of the predicate orientation."""
        assert _parallel(False).fingerprint() == _parallel(False).fingerprint()
        # Swapping which edge is "smaller" is the *same* structure by
        # symmetry (the two unnamed parallel edges are interchangeable), so
        # the canonical forms coincide:
        assert _parallel(False).fingerprint() == _parallel(True).fingerprint()
        # ...but an asymmetric variant (one edge labelled differently) makes
        # the orientation observable:
        def asym(lo, hi):
            q = QueryGraph("parallel-asym")
            q.add_vertex("a", label="Account")
            q.add_vertex("b", label="Account")
            q.add_edge("a", "b", label="Wire", name="e1")
            q.add_edge("a", "b", label="DirDeposit", name="e2")
            q.add_predicate(cmp(prop(lo, "amt"), "<", prop(hi, "amt")))
            return q

        assert asym("e1", "e2").fingerprint() != asym("e2", "e1").fingerprint()

    def test_zero_offset_matches_no_offset(self):
        """-0.0 / 0.0 / absent offsets canonicalize identically."""
        q1 = _parallel(False)
        q2 = QueryGraph("parallel")
        q2.add_vertex("a", label="Account")
        q2.add_vertex("b", label="Account")
        q2.add_edge("a", "b", label="Wire", name="e1")
        q2.add_edge("a", "b", label="Wire", name="e2")
        q2.add_predicate(cmp(prop("e1", "amt"), "<", prop("e2", "amt"), offset=-0.0))
        assert q1.fingerprint() == q2.fingerprint()


# ----------------------------------------------------------------------
# equality / hashing protocol
# ----------------------------------------------------------------------
class TestEqualityProtocol:
    def test_eq_against_non_querygraph(self):
        q = _owns()
        assert q != "owns"
        assert q != 42
        assert (q == None) is False  # noqa: E711

    def test_usable_as_dict_key(self):
        table = {_owns(): "first"}
        table[_owns(customer="x", account="y", edge="z")] = "second"
        assert len(table) == 1
        assert table[_owns()] == "second"

    def test_plan_is_hashable(self, example_db):
        plan = example_db.plan(_owns())
        assert isinstance(hash(plan), int)
        assert hash(plan) == hash(example_db.plan(_owns()))

    def test_plan_twice_returns_same_object(self, example_db):
        """The cache returns the *same* plan object for a structurally
        identical query against an unchanged store."""
        p1 = example_db.plan(_owns())
        p2 = example_db.plan(_owns(customer="cust", account="acct", edge="rel"))
        assert p1 is p2
