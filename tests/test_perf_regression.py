"""Opt-in perf-regression gate (the ``perf`` pytest marker).

Skipped by default so the tier-1 suite stays fast; enable with::

    RUN_PERF_BENCH=1 PYTHONPATH=src python -m pytest -m perf tests/test_perf_regression.py

Runs ``benchmarks/check_regression.py``: the EXTEND + maintenance throughput
benchmark is executed and the vectorized-vs-rowwise (and columnar-vs-legacy
maintenance) speedups are compared against the checked-in
``benchmarks/baseline_extend_throughput.json`` floors.
"""

from __future__ import annotations

import os
import sys

import pytest

pytestmark = [
    pytest.mark.perf,
    pytest.mark.skipif(
        os.environ.get("RUN_PERF_BENCH") != "1",
        reason="perf benchmark is opt-in; set RUN_PERF_BENCH=1 to run",
    ),
]

_BENCHMARKS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)


def test_extend_throughput_regression(tmp_path):
    if _BENCHMARKS_DIR not in sys.path:
        sys.path.insert(0, _BENCHMARKS_DIR)
    from check_regression import run_check

    report = run_check(output_path=str(tmp_path / "BENCH_extend_throughput.json"))
    assert report["ok"], "; ".join(report["failures"])
