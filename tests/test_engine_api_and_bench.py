"""Tests for the Database facade, memory reporting, and bench helpers."""

import pytest

from repro import Database, Direction, IndexConfig
from repro.bench.harness import (
    config_d,
    config_dp,
    config_ds,
    database_with_primary_config,
    fraud_configs,
    magicrecs_configs,
    maintenance_configs,
    vpt_view_and_config,
)
from repro.bench.reporting import Table, format_cell, ratio_string, speedup
from repro.index.views import OneHopView
from repro.workloads import fraud
from repro.query.pattern import QueryGraph
from repro.predicates import cmp, prop


class TestDatabaseFacade:
    def test_graph_and_primary_accessors(self, example_graph):
        db = Database(example_graph)
        assert db.graph is example_graph
        assert db.primary_index.config == IndexConfig.default()
        assert "PrimaryIndex" in db.describe() or "primary" in db.describe()

    def test_run_accepts_query_or_plan(self, example_graph):
        db = Database(example_graph)
        query = QueryGraph("q")
        query.add_vertex("a", label="Account")
        query.add_vertex("b", label="Account")
        query.add_edge("a", "b", label="Wire", name="e")
        plan = db.plan(query)
        assert db.run(query).count == db.run(plan).count
        result = db.run(query, materialize=True)
        assert len(result.matches) == result.count
        assert len(result) == result.count

    def test_memory_report_covers_secondary_indexes(self, example_graph):
        db = Database(example_graph)
        before = db.memory_report().total
        db.create_vertex_index(
            OneHopView("AllEdges"), directions=(Direction.FORWARD,), name="AllEdges"
        )
        after = db.memory_report().total
        assert after > before
        names = {b.name for b in db.memory_report().breakdowns}
        assert "AllEdges" in names

    def test_secondary_memory_overhead_is_small(self, financial_graph):
        """The Table III/IV space claim at test scale: shared-level secondary
        vertex indexes cost only a few percent of the primary indexes."""
        db = Database(financial_graph)
        base = db.memory_report().total
        view, config = fraud.vpc_view_and_config()
        db.create_vertex_index(
            view,
            directions=(Direction.FORWARD, Direction.BACKWARD),
            config=config,
            name="VPc",
        )
        ratio = db.memory_report().total / base
        assert 1.0 < ratio < 1.35

    def test_executor_and_optimizer_factories(self, example_graph):
        db = Database(example_graph)
        assert db.executor().graph is example_graph
        assert db.optimizer().store is db.store
        assert db.maintainer().store is db.store


class TestBenchHarness:
    def test_primary_configs(self):
        assert config_d() == IndexConfig.default()
        assert config_ds() == IndexConfig.sorted_by_nbr_label()
        assert config_dp() == IndexConfig.partitioned_by_nbr_label()

    def test_database_with_primary_config(self, labelled_graph):
        configured = database_with_primary_config(labelled_graph, "Dp", config_dp())
        assert configured.name == "Dp"
        assert configured.setup_seconds > 0
        assert configured.memory_bytes > 0

    def test_magicrecs_configs(self, social_graph):
        configs = magicrecs_configs(social_graph)
        assert set(configs) == {"D", "D+VPt"}
        assert configs["D+VPt"].indexed_edges == social_graph.num_edges
        assert "VPt" in configs["D+VPt"].database.store.secondary_index_names()

    def test_fraud_configs(self, financial_graph):
        configs = fraud_configs(financial_graph, selectivity=0.1)
        assert set(configs) == {"D", "D+VPc", "D+VPc+EPc"}
        epc_db = configs["D+VPc+EPc"].database
        assert "EPc" in epc_db.store.secondary_index_names()
        assert configs["D+VPc+EPc"].indexed_edges > configs["D+VPc"].indexed_edges

    def test_maintenance_configs(self):
        configs = maintenance_configs()
        assert list(configs) == ["Ds", "Dp", "Dps", "Dps+VPt", "Dps+EPt"]
        assert configs["Dps+EPt"]["ept"] and configs["Dps+EPt"]["vpt"]
        assert not configs["Ds"]["vpt"]

    def test_vpt_view_and_config(self):
        view, config = vpt_view_and_config()
        assert view.is_global
        assert config.sort_keys[0].prop == "time"


class TestReporting:
    def test_format_cell(self):
        assert format_cell(None) == "—"
        assert format_cell(0.123456) == "0.123"
        assert format_cell(12.3) == "12.3"
        assert format_cell(1234.5) == "1,234"
        assert format_cell(12345) == "12,345"
        assert format_cell("abc") == "abc"

    def test_speedup_and_ratio(self):
        assert speedup(2.0, 1.0) == pytest.approx(2.0)
        assert speedup(None, 1.0) is None
        assert speedup(1.0, 0.0) is None
        assert ratio_string(2.0) == "2.00x"
        assert ratio_string(None) == "—"

    def test_table_rendering(self):
        table = Table("Demo", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", None)
        table.add_note("a note")
        text = table.render()
        assert "Demo" in text and "a note" in text and "—" in text
        with pytest.raises(ValueError):
            table.add_row(1)
