"""Tests for partition keys, sort keys, and index configurations."""

import numpy as np
import pytest

from repro.errors import IndexConfigError
from repro.graph.types import NULL_CATEGORY
from repro.index.config import IndexConfig
from repro.storage.partition_keys import PartitionKey
from repro.storage.sort_keys import SortKey


class TestPartitionKey:
    def test_parse_forms(self):
        assert PartitionKey.parse("eadj.label") == PartitionKey.edge_label()
        assert PartitionKey.parse("vnbr.label") == PartitionKey.nbr_label()
        assert PartitionKey.parse("eadj.currency") == PartitionKey.edge_property("currency")
        assert PartitionKey.parse(" vnbr.city ") == PartitionKey.nbr_property("city")

    def test_parse_errors(self):
        with pytest.raises(IndexConfigError):
            PartitionKey.parse("currency")
        with pytest.raises(IndexConfigError):
            PartitionKey.parse("foo.currency")
        with pytest.raises(IndexConfigError):
            PartitionKey("elsewhere", "x")

    def test_domain_sizes(self, example_graph):
        assert PartitionKey.edge_label().domain_size(example_graph) == 3
        assert PartitionKey.nbr_label().domain_size(example_graph) == 2
        currency = PartitionKey.edge_property("currency")
        assert currency.domain_size(example_graph) == 3  # USD, EUR, GBP in Figure 1
        assert currency.effective_domain_size(example_graph) == 4

    def test_non_categorical_property_rejected(self, example_graph):
        with pytest.raises(IndexConfigError):
            PartitionKey.edge_property("amt").domain_size(example_graph)

    def test_codes_and_null_partition(self, example_graph):
        key = PartitionKey.edge_property("currency")
        edge_ids = np.arange(example_graph.num_edges)
        nbr_ids = example_graph.edge_dst
        raw = key.codes(example_graph, edge_ids, nbr_ids)
        effective = key.effective_codes(example_graph, edge_ids, nbr_ids)
        domain = key.domain_size(example_graph)
        # Owns edges have no currency: they map to the trailing partition.
        assert (raw == NULL_CATEGORY).sum() == 5
        assert (effective == domain).sum() == 5
        assert effective.min() >= 0

    def test_code_for_value(self, example_graph):
        key = PartitionKey.edge_label()
        assert key.code_for_value(example_graph, "Wire") == example_graph.schema.edge_label_code("Wire")
        assert key.code_for_value(example_graph, 1) == 1
        assert key.code_for_value(example_graph, None) == key.domain_size(example_graph)
        city = PartitionKey.nbr_property("city")
        assert city.code_for_value(example_graph, "SF") == example_graph.schema.vertex_property("city").code_of("SF")


class TestSortKey:
    def test_parse_forms(self):
        assert SortKey.parse("vnbr.ID") == SortKey.neighbour_id()
        assert SortKey.parse("eadj.date") == SortKey.edge_property("date")
        assert SortKey.parse("vnbr.city") == SortKey.nbr_property("city")

    def test_parse_errors(self):
        with pytest.raises(IndexConfigError):
            SortKey.parse("city")
        with pytest.raises(IndexConfigError):
            SortKey("nbr", "")

    def test_neighbour_id_values(self, example_graph):
        key = SortKey.neighbour_id()
        values = key.values(example_graph, np.arange(3), np.array([5, 2, 9]))
        assert list(values) == [5, 2, 9]

    def test_edge_id_values(self, example_graph):
        key = SortKey.edge_id()
        values = key.values(example_graph, np.array([3, 1, 2]), np.zeros(3, dtype=int))
        assert list(values) == [3, 1, 2]

    def test_property_values_with_nulls_sort_last(self, example_graph):
        key = SortKey.edge_property("amt")
        edge_ids = np.arange(example_graph.num_edges)
        values = key.values(example_graph, edge_ids, example_graph.edge_dst)
        owns_edges = [
            e for e in range(example_graph.num_edges)
            if example_graph.edge_label_name(e) == "Owns"
        ]
        # Null amounts (Owns edges) must be larger than any real amount.
        assert values[owns_edges].min() > values.max() - 1 or np.all(
            values[owns_edges] == np.iinfo(np.int64).max
        )

    def test_describe(self):
        assert SortKey.neighbour_id().describe() == "vnbr.ID"
        assert SortKey.edge_property("date").describe() == "eadj.date"


class TestIndexConfig:
    def test_default_configurations(self):
        d = IndexConfig.default()
        assert d.partition_keys == (PartitionKey.edge_label(),)
        assert d.sorted_by_neighbour_id
        ds = IndexConfig.sorted_by_nbr_label()
        assert not ds.sorted_by_neighbour_id
        dp = IndexConfig.partitioned_by_nbr_label()
        assert len(dp.partition_keys) == 2

    def test_with_sort_and_partitioning(self):
        config = IndexConfig.default().with_sort(SortKey.nbr_property("city"))
        assert config.primary_sort_key == SortKey.nbr_property("city")
        config = config.with_partitioning(PartitionKey.nbr_label())
        assert config.partition_keys == (PartitionKey.nbr_label(),)

    def test_empty_sort_defaults_to_neighbour_id(self):
        config = IndexConfig(partition_keys=(), sort_keys=())
        assert config.sorted_by_neighbour_id

    def test_validate(self, example_graph):
        IndexConfig.default().validate(example_graph)
        bad = IndexConfig(partition_keys=(PartitionKey.edge_property("amt"),))
        with pytest.raises(IndexConfigError):
            bad.validate(example_graph)
        bad_sort = IndexConfig(sort_keys=(SortKey.edge_property("missing"),))
        with pytest.raises(IndexConfigError):
            bad_sort.validate(example_graph)

    def test_same_partitioning_as(self):
        assert IndexConfig.default().same_partitioning_as(IndexConfig.sorted_by_nbr_label())
        assert not IndexConfig.default().same_partitioning_as(
            IndexConfig.partitioned_by_nbr_label()
        )

    def test_describe(self):
        text = IndexConfig.partitioned_by_nbr_label().describe()
        assert "PARTITION BY" in text and "SORT BY" in text
