"""Shared fixtures for the test suite.

Fixtures build small, deterministic graphs: the paper's running example
(Figure 1), a small random financial graph, a small follower graph, and a
small labelled graph, all sized so that the naive backtracking matcher can be
used as a correctness oracle.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.graph.generators import (
    FinancialGraphSpec,
    LabelledGraphSpec,
    SocialGraphSpec,
    generate_financial_graph,
    generate_labelled_graph,
    generate_social_graph,
    running_example_graph,
)
from repro.query.naive import NaiveMatcher


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: opt-in perf-regression benchmarks (set RUN_PERF_BENCH=1 to run)",
    )
    config.addinivalue_line(
        "markers",
        "fuzz: slow cross-backend differential fuzz cases, run nightly on "
        "CI as advisory (set RUN_FUZZ=1 to run locally)",
    )


@pytest.fixture(scope="session")
def example_graph():
    """The paper's running example graph (Figure 1)."""
    return running_example_graph()


@pytest.fixture(scope="session")
def financial_graph():
    """A small financial graph with acc/city/amt/date/currency properties.

    Sized (and de-skewed) so that the naive backtracking oracle can evaluate
    the 5-vertex fraud queries in well under a second.
    """
    return generate_financial_graph(
        FinancialGraphSpec(
            num_vertices=120, num_edges=480, num_cities=6, skew=0.3, seed=7
        )
    )


@pytest.fixture(scope="session")
def social_graph():
    """A small follower graph with a time property on edges."""
    return generate_social_graph(
        SocialGraphSpec(num_vertices=150, num_edges=600, skew=0.3, seed=13)
    )


@pytest.fixture(scope="session")
def labelled_graph():
    """A small G_{3,2}-style labelled graph."""
    return generate_labelled_graph(
        LabelledGraphSpec(
            num_vertices=150,
            num_edges=600,
            num_vertex_labels=3,
            num_edge_labels=2,
            skew=0.3,
            seed=21,
        )
    )


@pytest.fixture()
def example_db(example_graph):
    return Database(example_graph)


@pytest.fixture()
def financial_db(financial_graph):
    return Database(financial_graph)


@pytest.fixture(scope="session")
def example_oracle(example_graph):
    return NaiveMatcher(example_graph)


@pytest.fixture(scope="session")
def financial_oracle(financial_graph):
    return NaiveMatcher(financial_graph)


@pytest.fixture(scope="session")
def social_oracle(social_graph):
    return NaiveMatcher(social_graph)


@pytest.fixture(scope="session")
def labelled_oracle(labelled_graph):
    return NaiveMatcher(labelled_graph)
