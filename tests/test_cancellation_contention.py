"""CancellationToken (and its server paths) under thread contention.

The token is the one object the runtime shares freely across threads: the
caller's thread cancels, slot threads and pool workers check, and the
server's shed paths need ``cancel()``'s return value to attribute the
transition to exactly one caller.  These tests hammer those properties
from many threads at once, and exercise the server's cancel-before-admit
and cancel-while-queued admission paths.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import QueryCancelledError
from repro.query.faults import FAULTS_ENV_VAR
from repro.query.pattern import QueryGraph
from repro.query.runtime import CancellationToken, QueryContext
from repro.server import DatabaseServer, ServerConfig


def _owns_query() -> QueryGraph:
    q = QueryGraph("owns")
    q.add_vertex("c1", label="Customer")
    q.add_vertex("a1", label="Account")
    q.add_edge("c1", "a1", label="Owns", name="r1")
    return q


# ----------------------------------------------------------------------
# the token itself
# ----------------------------------------------------------------------
def test_exactly_one_cancel_call_wins_the_race():
    for _ in range(20):
        token = CancellationToken()
        barrier = threading.Barrier(16)
        wins = []

        def racer():
            barrier.wait()
            if token.cancel():
                wins.append(threading.get_ident())

        threads = [threading.Thread(target=racer) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(wins) == 1
        assert token.cancelled


def test_cancel_is_sticky_and_idempotent():
    token = CancellationToken()
    assert token.cancel() is True
    for _ in range(5):
        assert token.cancel() is False
        assert token.cancelled


def test_concurrent_cancel_and_check():
    """Checkers spin on ``check()`` while cancellers race ``cancel()``.

    Every checker must terminate with :class:`QueryCancelledError` (no
    missed wake-up, no deadlock), and the winning cancel is unique.
    """
    token = CancellationToken()
    context = QueryContext(cancel=token)
    start = threading.Barrier(12)
    cancelled_seen = []
    wins = []
    errors = []

    def checker():
        start.wait()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                context.check()
            except QueryCancelledError:
                cancelled_seen.append(1)
                return
        errors.append("checker never observed cancellation")

    def canceller():
        start.wait()
        if token.cancel():
            wins.append(1)

    threads = [threading.Thread(target=checker) for _ in range(8)] + [
        threading.Thread(target=canceller) for _ in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=20)
    assert errors == []
    assert len(cancelled_seen) == 8
    assert len(wins) == 1


# ----------------------------------------------------------------------
# server admission paths
# ----------------------------------------------------------------------
def test_cancel_before_admit_sheds_without_running(example_db):
    token = CancellationToken()
    token.cancel()
    with example_db.server(ServerConfig(max_concurrent=1)) as server:
        ticket = server.submit(_owns_query(), cancel=token)
        with pytest.raises(QueryCancelledError):
            ticket.result()
        assert ticket.outcome == "shed"
    # Pre-cancelled queries never occupy a slot.
    assert server.stats.admitted == 0
    assert server.stats.shed == 1
    assert server.stats.submitted == 1


def test_many_threads_cancelling_one_queued_ticket(example_db, monkeypatch):
    # Hold the single slot with a delay-fault query (sleeps in a worker
    # thread, so cancellation stays responsive), queue a victim, then let
    # 12 threads race to cancel the victim: it shed exactly once and the
    # counters reconcile.
    monkeypatch.setenv(FAULTS_ENV_VAR, "delay@0:2.5!")
    hold = CancellationToken()
    server = DatabaseServer(
        example_db,
        ServerConfig(
            max_concurrent=1,
            max_queue_depth=4,
            parallelism=2,
            backend="thread",
        ),
    )
    try:
        server.submit(_owns_query(), cancel=hold)
        deadline = time.monotonic() + 5
        while server.running() != 1:
            assert time.monotonic() < deadline, "slot never occupied"
            time.sleep(0.005)
        victim = server.submit(_owns_query())

        barrier = threading.Barrier(12)
        first_cancels = []

        def attacker():
            barrier.wait()
            if victim.cancel():
                first_cancels.append(1)

        threads = [threading.Thread(target=attacker) for _ in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(first_cancels) == 1
        with pytest.raises(QueryCancelledError):
            victim.result()
        assert server.stats.shed == 1
    finally:
        hold.cancel()
        server.drain()
    stats = server.stats.snapshot()
    assert stats["submitted"] == stats["admitted"] + stats["rejected"] + stats["shed"]


def test_cancel_running_query_via_ticket(example_db, monkeypatch):
    monkeypatch.setenv(FAULTS_ENV_VAR, "delay@0:2.5!")
    server = DatabaseServer(
        example_db,
        ServerConfig(max_concurrent=1, parallelism=2, backend="thread"),
    )
    try:
        ticket = server.submit(_owns_query())
        deadline = time.monotonic() + 5
        while server.running() != 1:
            assert time.monotonic() < deadline, "slot never occupied"
            time.sleep(0.005)
        ticket.cancel()
        with pytest.raises(QueryCancelledError):
            ticket.result()
        # It *was* admitted (ran, then aborted cooperatively): failed, not
        # shed.
        assert server.stats.admitted == 1
        assert server.stats.failed == 1
    finally:
        server.drain()
