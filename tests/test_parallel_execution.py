"""Randomized equivalence suite for morsel-driven parallel execution.

The determinism contract under test: for every query of the zoo (1/2/3-leg
EXTEND/INTERSECT, MULTI-EXTEND, scan predicates, sorted filters) and for any
morsel partitioning, ``parallelism=4`` must produce **byte-identical** output
to ``parallelism=1`` — same match rows, same row order, same execution
statistics — and both must agree with the naive backtracking oracle.

Morsel boundary edge cases get dedicated coverage: empty morsels, morsels
smaller than one batch, and single-vertex ranges.
"""

from __future__ import annotations

import pytest

from repro import Database, Direction
from repro.bench.harness import vpt_view_and_config
from repro.graph.generators import LabelledGraphSpec, generate_labelled_graph
from repro.query import MorselExecutor, Predicate, QueryGraph, cmp, prop
from repro.query.executor import Executor
from repro.query.naive import NaiveMatcher
from repro.workloads import fraud, labelled_subgraph, magicrecs


def _stats_dict(stats):
    return {
        "lists_accessed": stats.lists_accessed,
        "list_entries_fetched": stats.list_entries_fetched,
        "intermediate_rows": stats.intermediate_rows,
        "output_rows": stats.output_rows,
        "predicate_evaluations": stats.predicate_evaluations,
    }


def assert_parallel_matches_serial(db, query, oracle_count=None, parallelism=4):
    serial = db.run(query, materialize=True, parallelism=1)
    parallel = db.run(query, materialize=True, parallelism=parallelism)
    assert parallel.count == serial.count
    assert parallel.matches == serial.matches
    assert _stats_dict(parallel.stats) == _stats_dict(serial.stats)
    if oracle_count is not None:
        assert serial.count == oracle_count
    return serial


# ----------------------------------------------------------------------
# the query zoo: handcrafted 1/2/3-leg shapes on seeded random graphs
# ----------------------------------------------------------------------
def _one_leg():
    query = QueryGraph("p1")
    query.add_vertex("a")
    query.add_vertex("b")
    query.add_edge("a", "b", name="e0")
    return query


def _triangle():
    query = QueryGraph("p2")
    for name in ("a", "b", "c"):
        query.add_vertex(name)
    query.add_edge("a", "b", name="e0")
    query.add_edge("a", "c", name="e1")
    query.add_edge("b", "c", name="e2")
    return query


def _three_leg_clique():
    """4-clique-ish diamond: the last vertex intersects three bound lists."""
    query = QueryGraph("p3")
    for name in ("a", "b", "c", "d"):
        query.add_vertex(name)
    query.add_edge("a", "b", name="e0")
    query.add_edge("a", "c", name="e1")
    query.add_edge("b", "c", name="e2")
    query.add_edge("a", "d", name="e3")
    query.add_edge("b", "d", name="e4")
    query.add_edge("c", "d", name="e5")
    return query


def _predicated():
    query = QueryGraph("p4")
    query.add_vertex("a")
    query.add_vertex("b")
    query.add_edge("a", "b", name="e0")
    query.add_predicate(cmp(prop("a", "ID"), "<", 60))
    return query


ZOO = {
    "one_leg": _one_leg,
    "triangle": _triangle,
    "three_leg_clique": _three_leg_clique,
    "predicated": _predicated,
}


@pytest.mark.parametrize("seed", [3, 17, 92])
@pytest.mark.parametrize("shape", sorted(ZOO))
def test_random_graphs_zoo_parallel_equals_serial_and_oracle(seed, shape):
    graph = generate_labelled_graph(
        LabelledGraphSpec(
            num_vertices=110,
            num_edges=440,
            num_vertex_labels=2,
            num_edge_labels=2,
            skew=0.4,
            seed=seed,
        )
    )
    db = Database(graph)
    query = ZOO[shape]()
    oracle = NaiveMatcher(graph).count(query)
    assert_parallel_matches_serial(db, query, oracle_count=oracle)


# ----------------------------------------------------------------------
# the paper's workload queries (SQ / MR / MF families)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["SQ1", "SQ4", "SQ7"])
def test_labelled_subgraph_queries_parallel(labelled_graph, labelled_oracle, name):
    query = labelled_subgraph.build_workload(3, 2, names=[name])[name]
    db = Database(labelled_graph)
    assert_parallel_matches_serial(
        db, query, oracle_count=labelled_oracle.count(query)
    )


def test_magicrecs_sorted_filter_queries_parallel(social_graph, social_oracle):
    """Sorted-range filters through a time-sorted secondary index."""
    queries = magicrecs.build_workload(social_graph, selectivity=0.1)
    db = Database(social_graph)
    view, config = vpt_view_and_config()
    db.create_vertex_index(
        view, directions=(Direction.FORWARD,), config=config, name="VPt"
    )
    for name, query in queries.items():
        assert_parallel_matches_serial(
            db, query, oracle_count=social_oracle.count(query)
        )


def test_fraud_multi_extend_queries_parallel(financial_graph, financial_oracle):
    """MULTI-EXTEND plans (city-sorted VPc index) under parallel dispatch."""
    queries = fraud.build_workload(financial_graph, selectivity=0.1)
    db = Database(financial_graph)
    view, config = fraud.vpc_view_and_config()
    db.create_vertex_index(
        view,
        directions=(Direction.FORWARD, Direction.BACKWARD),
        config=config,
        name="VPc",
    )
    for name, query in queries.items():
        assert_parallel_matches_serial(
            db, query, oracle_count=financial_oracle.count(query)
        )


# ----------------------------------------------------------------------
# morsel boundary edge cases (explicit morsel sizes on the dispatcher)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def boundary_db(labelled_graph):
    return Database(labelled_graph)


@pytest.fixture(scope="module")
def boundary_plan(boundary_db):
    return boundary_db.plan(_triangle())


@pytest.fixture(scope="module")
def boundary_serial(boundary_db, boundary_plan):
    executor = Executor(boundary_db.graph, batch_size=boundary_db.batch_size)
    return executor.run(boundary_plan, materialize=True)


@pytest.mark.parametrize(
    "morsel_size,coalesce",
    [
        (1, 1),  # single-vertex ranges
        (7, 8),  # morsel much smaller than one batch
        (64, 2),
        (10_000, 8),  # one morsel spanning the whole domain
    ],
)
def test_morsel_boundaries_byte_identical(
    boundary_db, boundary_plan, boundary_serial, morsel_size, coalesce
):
    executor = MorselExecutor(
        boundary_db.graph,
        batch_size=boundary_db.batch_size,
        num_workers=4,
        morsel_size=morsel_size,
        coalesce=coalesce,
    )
    result = executor.run(boundary_plan, materialize=True)
    assert result.count == boundary_serial.count
    assert result.matches == boundary_serial.matches
    assert _stats_dict(result.stats) == _stats_dict(boundary_serial.stats)


def test_empty_morsels_from_selective_scan_predicate(labelled_graph):
    """Morsels past the predicate's ID ceiling produce zero candidates."""
    db = Database(labelled_graph)
    query = QueryGraph("empty_tail")
    query.add_vertex("a")
    query.add_vertex("b")
    query.add_edge("a", "b", name="e0")
    query.add_predicate(cmp(prop("a", "ID"), "<", 5))
    plan = db.plan(query)
    serial = Executor(db.graph).run(plan, materialize=True)
    executor = MorselExecutor(db.graph, num_workers=4, morsel_size=10)
    result = executor.run(plan, materialize=True)
    assert result.matches == serial.matches
    assert _stats_dict(result.stats) == _stats_dict(serial.stats)


def test_all_morsels_empty_yields_empty_result(labelled_graph):
    db = Database(labelled_graph)
    query = QueryGraph("none")
    query.add_vertex("a")
    query.add_vertex("b")
    query.add_edge("a", "b", name="e0")
    query.add_predicate(cmp(prop("a", "ID"), "<", 0))
    result = db.run(query, materialize=True, parallelism=4)
    assert result.count == 0
    assert result.matches == []


def test_parallel_batches_respect_batch_size(boundary_db, boundary_plan):
    executor = MorselExecutor(
        boundary_db.graph, batch_size=128, num_workers=4, coalesce=8
    )
    sizes = [len(batch) for batch in executor.execute(boundary_plan)]
    assert sizes, "plan should produce at least one batch"
    assert max(sizes) <= 128


def test_scan_vertex_range_restricts_domain(boundary_db):
    """An explicit range on the plan's scan is partitioned, not widened."""
    from dataclasses import replace

    plan = boundary_db.plan(_one_leg())
    ranged = replace(plan.operators[0], vertex_range=(20, 60))
    ranged_plan = type(plan)(query=plan.query, operators=[ranged, *plan.operators[1:]])
    serial = Executor(boundary_db.graph).run(ranged_plan, materialize=True)
    assert all(20 <= m["a"] < 60 for m in serial.matches)
    parallel = MorselExecutor(
        boundary_db.graph, num_workers=4, morsel_size=9
    ).run(ranged_plan, materialize=True)
    assert parallel.matches == serial.matches


# ----------------------------------------------------------------------
# knob plumbing
# ----------------------------------------------------------------------
def test_parallelism_env_var_default(labelled_graph, monkeypatch):
    monkeypatch.setenv("REPRO_PARALLELISM", "4")
    db = Database(labelled_graph)
    assert isinstance(db.executor(), MorselExecutor)
    monkeypatch.setenv("REPRO_PARALLELISM", "1")
    assert isinstance(db.executor(), Executor)
    monkeypatch.delenv("REPRO_PARALLELISM")
    assert isinstance(db.executor(), Executor)


def test_constructor_parallelism_beats_env(labelled_graph, monkeypatch):
    monkeypatch.setenv("REPRO_PARALLELISM", "1")
    db = Database(labelled_graph, parallelism=4)
    assert isinstance(db.executor(), MorselExecutor)
    # The per-call argument wins over both.
    assert isinstance(db.executor(parallelism=1), Executor)


def test_invalid_parallelism_rejected(labelled_graph):
    from repro.errors import ExecutionError

    db = Database(labelled_graph)
    with pytest.raises(ExecutionError):
        db.run(_one_leg(), parallelism=0)


def test_backend_env_var_default(labelled_graph, monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "process")
    db = Database(labelled_graph)
    executor = db.executor(parallelism=4)
    assert isinstance(executor, MorselExecutor)
    assert executor.backend == "process"
    # parallelism=1 stays the serial oracle regardless of the backend knob.
    assert isinstance(db.executor(parallelism=1), Executor)
    monkeypatch.delenv("REPRO_BACKEND")
    assert db.executor(parallelism=4).backend == "thread"


def test_constructor_backend_beats_env(labelled_graph, monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "thread")
    db = Database(labelled_graph, backend="serial")
    assert db.executor(parallelism=4).backend == "serial"
    # The per-call argument wins over both.
    assert db.executor(parallelism=4, backend="process").backend == "process"


def test_invalid_backend_rejected(labelled_graph, monkeypatch):
    from repro.errors import ExecutionError

    db = Database(labelled_graph)
    with pytest.raises(ExecutionError):
        db.run(_one_leg(), parallelism=2, backend="gpu")
    # The typo surfaces even when the serial path would never use it.
    with pytest.raises(ExecutionError):
        db.run(_one_leg(), parallelism=1, backend="gpu")
    monkeypatch.setenv("REPRO_BACKEND", "bogus")
    with pytest.raises(ExecutionError):
        db.run(_one_leg(), parallelism=2)


def test_backend_instance_rejected_by_database(labelled_graph):
    from repro.errors import ExecutionError
    from repro.query.backends import ThreadBackend

    db = Database(labelled_graph)
    with pytest.raises(ExecutionError, match="names"):
        db.run(_one_leg(), parallelism=2, backend=ThreadBackend())


def test_describe_documents_backends(labelled_graph, monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    description = Database(labelled_graph).describe()
    assert "default backend: thread" in description
    assert "process" in description and "serial" in description
    assert "byte-identical" in description
    monkeypatch.setenv("REPRO_BACKEND", "process")
    assert "default backend: process" in Database(labelled_graph).describe()
