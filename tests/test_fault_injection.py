"""Chaos suite: injected faults, deadlines, and cancellation, end to end.

The acceptance contract of the fault-tolerant runtime:

* **Recovery determinism** — with a fault injected (worker kill, reply
  corruption, delay) on any backend, the query's matches and count are
  byte-identical to the fault-free serial oracle, and the recovery is
  visible only in ``stats.retries`` / ``stats.morsels_recovered``.
* **Deadlines bite** — ``Database.run(timeout=T)`` on a query whose worker
  is stuck raises :class:`~repro.errors.QueryTimeoutError` within ``2*T``,
  and no worker processes are leaked.
* **Cancellation bites** — triggering a
  :class:`~repro.query.runtime.CancellationToken` stops the query with
  :class:`~repro.errors.QueryCancelledError`.
* **Bugs are not retried** — an injected worker *error* (a deterministic
  exception, not a death) propagates immediately, and the pool is still
  torn down.

Process-backend scenarios are skipped where ``fork`` is not the default
start method (per-query spawn pools are too slow for tier-1; the thread and
serial backends exercise the same dispatcher recovery paths everywhere).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time

import pytest

from repro import Database
from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
)
from repro.graph.generators import LabelledGraphSpec, generate_labelled_graph
from repro.query import MorselExecutor, QueryGraph
from repro.query.backends import fork_available
from repro.query.executor import Executor
from repro.query.runtime import CancellationToken

needs_fork = pytest.mark.skipif(
    not fork_available(),
    reason="process-backend chaos needs cheap fork pools",
)

fuzz = pytest.mark.skipif(
    os.environ.get("RUN_FUZZ") != "1",
    reason="full chaos matrix is opt-in; set RUN_FUZZ=1 to run",
)

#: Backends whose dispatcher recovery runs everywhere (no pool start cost).
IN_PROCESS_BACKENDS = ("serial", "thread")


def _graph():
    return generate_labelled_graph(
        LabelledGraphSpec(
            num_vertices=120,
            num_edges=480,
            num_vertex_labels=2,
            num_edge_labels=2,
            skew=0.6,
            seed=23,
        )
    )


def _triangle():
    query = QueryGraph("triangle")
    for name in ("a", "b", "c"):
        query.add_vertex(name)
    query.add_edge("a", "b", name="e0")
    query.add_edge("a", "c", name="e1")
    query.add_edge("b", "c", name="e2")
    return query


@pytest.fixture(scope="module")
def chaos_db():
    return Database(_graph())


@pytest.fixture(scope="module")
def oracle(chaos_db):
    """Fault-free serial baseline: the byte-identity reference."""
    plan = chaos_db.plan(_triangle())
    result = Executor(chaos_db.graph, batch_size=chaos_db.batch_size).run(
        plan, materialize=True
    )
    return plan, result


def _chaos_executor(db, backend, fault_plan, **kwargs):
    kwargs.setdefault("num_workers", 2)
    kwargs.setdefault("morsel_timeout", 15.0)
    return MorselExecutor(
        db.graph,
        batch_size=db.batch_size,
        backend=backend,
        fault_plan=fault_plan,
        **kwargs,
    )


def _assert_identical(result, oracle_result):
    assert result.count == oracle_result.count
    assert result.matches == oracle_result.matches
    # Work counters match the fault-free run: failed attempts' partial
    # stats are discarded, recovery shows only in the dedicated counters.
    assert result.stats.lists_accessed == oracle_result.stats.lists_accessed
    assert result.stats.output_rows == oracle_result.stats.output_rows
    assert (
        result.stats.intermediate_rows == oracle_result.stats.intermediate_rows
    )


def _no_leaked_workers(before):
    """All worker processes spawned since ``before`` are gone (reaped)."""
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        leaked = [
            p for p in multiprocessing.active_children() if p not in before
        ]
        if not leaked:
            return True
        time.sleep(0.05)
    return False


# ----------------------------------------------------------------------
# recovery determinism (in-process backends: run everywhere)
# ----------------------------------------------------------------------
class TestInProcessRecovery:
    @pytest.mark.parametrize("backend", IN_PROCESS_BACKENDS)
    @pytest.mark.parametrize("spec", ["kill@0", "kill@2", "corrupt@1"])
    def test_single_fault_retries_to_identical_result(
        self, chaos_db, oracle, backend, spec
    ):
        plan, oracle_result = oracle
        executor = _chaos_executor(chaos_db, backend, spec)
        result = executor.run(plan, materialize=True)
        _assert_identical(result, oracle_result)
        assert result.stats.retries >= 1
        assert result.stats.morsels_recovered >= 1

    @pytest.mark.parametrize("backend", IN_PROCESS_BACKENDS)
    def test_persistent_fault_degrades_to_serial_fallback(
        self, chaos_db, oracle, backend
    ):
        plan, oracle_result = oracle
        executor = _chaos_executor(chaos_db, backend, "kill@1!")
        result = executor.run(plan, materialize=True)
        _assert_identical(result, oracle_result)
        # Every attempt failed: initial + max_retries re-submissions, then
        # the in-parent serial re-execution recovered the range.
        assert result.stats.retries == executor.max_retries + 1
        assert result.stats.morsels_recovered == 1

    @pytest.mark.parametrize("backend", IN_PROCESS_BACKENDS)
    def test_zero_retries_goes_straight_to_fallback(
        self, chaos_db, oracle, backend
    ):
        plan, oracle_result = oracle
        executor = _chaos_executor(chaos_db, backend, "kill@0", max_retries=0)
        result = executor.run(plan, materialize=True)
        _assert_identical(result, oracle_result)
        assert result.stats.retries == 1
        assert result.stats.morsels_recovered == 1

    @pytest.mark.parametrize("backend", IN_PROCESS_BACKENDS)
    def test_worker_error_propagates_unretried(self, chaos_db, oracle, backend):
        plan, _ = oracle
        executor = _chaos_executor(chaos_db, backend, "error@0")
        with pytest.raises(RuntimeError, match="injected worker error"):
            executor.run(plan)

    def test_fault_free_run_reports_no_recovery(self, chaos_db, oracle):
        plan, oracle_result = oracle
        executor = _chaos_executor(chaos_db, "thread", None)
        result = executor.run(plan, materialize=True)
        _assert_identical(result, oracle_result)
        assert result.stats.retries == 0
        assert result.stats.morsels_recovered == 0

    def test_faults_env_var_arms_injection(self, chaos_db, oracle, monkeypatch):
        plan, oracle_result = oracle
        monkeypatch.setenv("REPRO_FAULTS", "kill@0")
        executor = _chaos_executor(chaos_db, "thread", None)
        result = executor.run(plan, materialize=True)
        _assert_identical(result, oracle_result)
        assert result.stats.retries >= 1


# ----------------------------------------------------------------------
# recovery determinism (process backend: real worker deaths)
# ----------------------------------------------------------------------
@needs_fork
class TestProcessRecovery:
    @pytest.mark.parametrize("spec", ["kill@1", "corrupt@0"])
    def test_real_fault_recovers_identically(self, chaos_db, oracle, spec):
        plan, oracle_result = oracle
        before = set(multiprocessing.active_children())
        executor = _chaos_executor(chaos_db, "process", spec)
        result = executor.run(plan, materialize=True)
        _assert_identical(result, oracle_result)
        assert result.stats.retries >= 1
        assert result.stats.morsels_recovered >= 1
        assert _no_leaked_workers(before)

    def test_repeated_kill_falls_back_to_serial(self, chaos_db, oracle):
        plan, oracle_result = oracle
        before = set(multiprocessing.active_children())
        executor = _chaos_executor(chaos_db, "process", "kill@0!")
        result = executor.run(plan, materialize=True)
        _assert_identical(result, oracle_result)
        assert result.stats.morsels_recovered >= 1
        assert _no_leaked_workers(before)

    def test_worker_error_propagates_and_pool_is_reaped(self, chaos_db, oracle):
        plan, _ = oracle
        before = set(multiprocessing.active_children())
        executor = _chaos_executor(chaos_db, "process", "error@0")
        with pytest.raises(RuntimeError, match="injected worker error"):
            executor.run(plan)
        assert _no_leaked_workers(before)

    def test_hung_worker_hits_morsel_timeout_backstop(self, chaos_db, oracle):
        plan, oracle_result = oracle
        before = set(multiprocessing.active_children())
        # The delay (1s) exceeds the tiny per-morsel backstop (0.2s), so the
        # reply is declared lost, the retry (attempt 1: fault fires on
        # attempt 0 only) succeeds, and the run still matches the oracle.
        executor = _chaos_executor(
            chaos_db, "process", "delay@0:1.0", morsel_timeout=0.2
        )
        result = executor.run(plan, materialize=True)
        _assert_identical(result, oracle_result)
        assert result.stats.retries >= 1
        assert _no_leaked_workers(before)


# ----------------------------------------------------------------------
# deadlines and cancellation through the public API
# ----------------------------------------------------------------------
class TestDeadlinesAndCancellation:
    def test_serial_timeout_fires_cooperatively(self, chaos_db):
        # parallelism=1: no dispatcher at all, only per-batch checks.
        with pytest.raises(QueryTimeoutError) as excinfo:
            chaos_db.run(_triangle(), timeout=1e-9)
        assert excinfo.value.stats is not None

    def test_timeout_within_two_x_on_thread_backend(self, chaos_db):
        db = Database(chaos_db.graph)
        executor = _chaos_executor(db, "thread", "delay@0:4.0!")
        plan = db.plan(_triangle())
        timeout = 1.0
        started = time.monotonic()
        with pytest.raises(QueryTimeoutError) as excinfo:
            executor.run(plan, timeout=timeout)
        # The raise itself must land within 2x the deadline even though a
        # worker thread sleeps well past it (polled waits + abort request).
        assert time.monotonic() - started < 2 * timeout
        assert excinfo.value.timeout == timeout
        assert excinfo.value.stats is not None

    @needs_fork
    def test_timeout_within_two_x_on_process_backend(self, chaos_db):
        before = set(multiprocessing.active_children())
        db = Database(chaos_db.graph)
        executor = _chaos_executor(db, "process", "delay@0:30.0!")
        plan = db.plan(_triangle())
        timeout = 1.5
        started = time.monotonic()
        with pytest.raises(QueryTimeoutError):
            executor.run(plan, timeout=timeout)
        assert time.monotonic() - started < 2 * timeout
        # terminate() reaps even the sleeping worker: nothing leaks.
        assert _no_leaked_workers(before)

    def test_database_run_timeout_passthrough(self, chaos_db):
        result = chaos_db.run(_triangle(), timeout=120.0)
        assert result.stats.deadline_remaining is not None
        assert 0.0 < result.stats.deadline_remaining <= 120.0

    def test_database_count_timeout_passthrough(self, chaos_db):
        oracle_count = chaos_db.count(_triangle())
        assert chaos_db.count(_triangle(), timeout=120.0) == oracle_count

    def test_pre_cancelled_token_stops_immediately(self, chaos_db):
        token = CancellationToken()
        token.cancel()
        with pytest.raises(QueryCancelledError):
            chaos_db.run(_triangle(), parallelism=2, cancel=token)

    def test_mid_flight_cancellation_from_another_thread(self, chaos_db):
        db = Database(chaos_db.graph)
        # Stall morsel 0 long enough for the canceller thread to fire.
        executor = _chaos_executor(db, "thread", "delay@0:8.0!")
        plan = db.plan(_triangle())
        token = CancellationToken()
        canceller = threading.Timer(0.3, token.cancel)
        canceller.start()
        started = time.monotonic()
        try:
            with pytest.raises(QueryCancelledError) as excinfo:
                executor.run(plan, cancel=token)
        finally:
            canceller.cancel()
        assert time.monotonic() - started < 4.0
        assert excinfo.value.stats is not None

    def test_cancel_token_is_reusable_for_observation(self, chaos_db):
        token = CancellationToken()
        result = chaos_db.run(_triangle(), parallelism=2, cancel=token)
        assert result.count == chaos_db.count(_triangle())
        assert not token.cancelled


# ----------------------------------------------------------------------
# full chaos matrix (nightly)
# ----------------------------------------------------------------------
@fuzz
class TestChaosMatrix:
    BACKENDS = ("serial", "thread", "process")
    SPECS = (
        "kill@0",
        "kill@3",
        "kill@0!",
        "corrupt@0",
        "corrupt@2!",
        "delay@1:0.05",
        "kill@0,corrupt@2",
    )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("spec", SPECS)
    @pytest.mark.parametrize("workers", (2, 4))
    def test_matrix_byte_identity(self, chaos_db, oracle, backend, spec, workers):
        if backend == "process" and not fork_available():
            pytest.skip("process-backend chaos needs cheap fork pools")
        plan, oracle_result = oracle
        executor = _chaos_executor(
            chaos_db, backend, spec, num_workers=workers
        )
        result = executor.run(plan, materialize=True)
        _assert_identical(result, oracle_result)
