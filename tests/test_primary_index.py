"""Tests for the primary A+ index (nested CSR over the whole edge set)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Direction
from repro.graph.generators import LabelledGraphSpec, generate_labelled_graph
from repro.index.config import IndexConfig
from repro.index.primary import AdjacencyIndex, PrimaryIndex
from repro.storage.partition_keys import PartitionKey
from repro.storage.sort_keys import SortKey


class TestForwardBackwardLists:
    def test_forward_lists_contain_exactly_the_out_edges(self, example_graph):
        index = AdjacencyIndex(example_graph, Direction.FORWARD, IndexConfig.default())
        for vertex in range(example_graph.num_vertices):
            edge_ids, nbr_ids = index.list(vertex)
            expected = set(np.nonzero(example_graph.edge_src == vertex)[0].tolist())
            assert set(edge_ids.tolist()) == expected
            assert all(
                int(example_graph.edge_dst[e]) == int(n)
                for e, n in zip(edge_ids, nbr_ids)
            )

    def test_backward_lists_contain_exactly_the_in_edges(self, example_graph):
        index = AdjacencyIndex(example_graph, Direction.BACKWARD, IndexConfig.default())
        for vertex in range(example_graph.num_vertices):
            edge_ids, nbr_ids = index.list(vertex)
            expected = set(np.nonzero(example_graph.edge_dst == vertex)[0].tolist())
            assert set(edge_ids.tolist()) == expected

    def test_label_partition_access(self, example_graph):
        index = AdjacencyIndex(example_graph, Direction.FORWARD, IndexConfig.default())
        alice = 6  # v6 is the first Customer added (Charles) -> check by label instead
        for vertex in range(example_graph.num_vertices):
            edge_ids, _ = index.list(vertex, ["Wire"])
            assert all(
                example_graph.edge_label_name(int(e)) == "Wire" for e in edge_ids
            )

    def test_lists_sorted_by_neighbour_id(self, example_graph):
        index = AdjacencyIndex(example_graph, Direction.FORWARD, IndexConfig.default())
        for vertex in range(example_graph.num_vertices):
            for label in ("Wire", "DirDeposit", "Owns"):
                _, nbr_ids = index.list(vertex, [label])
                assert list(nbr_ids) == sorted(nbr_ids)

    def test_degree_and_positions(self, example_graph):
        index = AdjacencyIndex(example_graph, Direction.FORWARD, IndexConfig.default())
        degrees = [index.degree(v) for v in range(example_graph.num_vertices)]
        assert sum(degrees) == example_graph.num_edges
        positions = index.positions_of_edges(np.arange(example_graph.num_edges))
        assert sorted(positions.tolist()) == list(range(example_graph.num_edges))

    def test_sort_by_property(self, example_graph):
        config = IndexConfig(
            partition_keys=(PartitionKey.edge_label(),),
            sort_keys=(SortKey.edge_property("date"), SortKey.neighbour_id()),
        )
        index = AdjacencyIndex(example_graph, Direction.FORWARD, config)
        for vertex in range(example_graph.num_vertices):
            edge_ids, _ = index.list(vertex, ["Wire"])
            dates = [example_graph.edge_property(int(e), "date") for e in edge_ids]
            assert dates == sorted(dates)

    def test_nested_partitioning_by_currency(self, example_graph):
        config = IndexConfig(
            partition_keys=(
                PartitionKey.edge_label(),
                PartitionKey.edge_property("currency"),
            ),
            sort_keys=(SortKey.neighbour_id(),),
        )
        index = AdjacencyIndex(example_graph, Direction.FORWARD, config)
        total = 0
        for vertex in range(example_graph.num_vertices):
            for label in ("Wire", "DirDeposit", "Owns"):
                for currency in ("USD", "EUR", "GBP", None):
                    edge_ids, _ = index.list(vertex, [label, currency])
                    total += len(edge_ids)
                    for edge in edge_ids:
                        assert example_graph.edge_label_name(int(edge)) == label
                        assert example_graph.edge_property(int(edge), "currency") == currency
        assert total == example_graph.num_edges


class TestPrimaryIndexPair:
    def test_reconfigure_rebuilds_both_directions(self, example_graph):
        primary = PrimaryIndex(example_graph)
        result = primary.reconfigure(IndexConfig.partitioned_by_nbr_label())
        assert result.seconds >= 0
        assert primary.forward.config == IndexConfig.partitioned_by_nbr_label()
        assert primary.backward.config == IndexConfig.partitioned_by_nbr_label()

    def test_memory_grows_with_partitioning_level(self, labelled_graph):
        base = PrimaryIndex(labelled_graph, config=IndexConfig.default())
        partitioned = PrimaryIndex(
            labelled_graph, config=IndexConfig.partitioned_by_nbr_label()
        )
        assert partitioned.nbytes() > base.nbytes()
        # ...but only via the partition levels, not the ID lists.
        assert (
            partitioned.forward.id_lists.nbytes() == base.forward.id_lists.nbytes()
        )

    def test_sorting_change_has_no_memory_overhead(self, labelled_graph):
        base = PrimaryIndex(labelled_graph, config=IndexConfig.default())
        sorted_by_label = PrimaryIndex(
            labelled_graph, config=IndexConfig.sorted_by_nbr_label()
        )
        assert sorted_by_label.nbytes() == base.nbytes()

    def test_for_direction(self, example_graph):
        primary = PrimaryIndex(example_graph)
        assert primary.for_direction(Direction.FORWARD) is primary.forward
        assert primary.for_direction(Direction.BACKWARD) is primary.backward


@st.composite
def random_graph(draw):
    num_vertices = draw(st.integers(min_value=2, max_value=30))
    num_edges = draw(st.integers(min_value=1, max_value=120))
    seed = draw(st.integers(min_value=0, max_value=1000))
    return generate_labelled_graph(
        LabelledGraphSpec(
            num_vertices=num_vertices,
            num_edges=num_edges,
            num_vertex_labels=draw(st.integers(min_value=1, max_value=3)),
            num_edge_labels=draw(st.integers(min_value=1, max_value=3)),
            seed=seed,
        )
    )


class TestPrimaryIndexProperties:
    @settings(max_examples=25, deadline=None)
    @given(random_graph())
    def test_every_edge_indexed_exactly_once_per_direction(self, graph):
        for direction in (Direction.FORWARD, Direction.BACKWARD):
            index = AdjacencyIndex(graph, direction, IndexConfig.default())
            seen = []
            for vertex in range(graph.num_vertices):
                edge_ids, _ = index.list(vertex)
                seen.extend(edge_ids.tolist())
            assert sorted(seen) == list(range(graph.num_edges))

    @settings(max_examples=25, deadline=None)
    @given(random_graph())
    def test_partition_prefix_equals_union_of_partitions(self, graph):
        index = AdjacencyIndex(graph, Direction.FORWARD, IndexConfig.default())
        labels = graph.schema.edge_labels.names
        for vertex in range(graph.num_vertices):
            full_edges, _ = index.list(vertex)
            union = []
            for label in labels:
                edges, _ = index.list(vertex, [label])
                union.extend(edges.tolist())
            assert sorted(union) == sorted(full_edges.tolist())
