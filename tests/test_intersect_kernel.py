"""Unit tests for the batch-wide segment intersection kernel.

The kernel (:mod:`repro.storage.intersect`) is checked against a brute-force
per-row reference that enumerates combinations with ``itertools.product`` —
randomized segments with duplicates (parallel edges), empty rows, unsorted
legs, float keys, and every membership strategy forced in turn.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.storage.intersect import (
    GALLOP_RATIO,
    HASH_TABLE_DENSITY,
    choose_strategy,
    combo_positions,
    dedup_sorted,
    intersect_segments,
)


# ----------------------------------------------------------------------
# brute-force reference
# ----------------------------------------------------------------------
def reference_combos(leg_keys, leg_counts, num_rows, presorted):
    """Per-row sorted intersection, combinations enumerated last-leg-fastest.

    Returns a list of ``(row, key, (pos_leg0, pos_leg1, ...))`` tuples with
    positions into the legs' *original* concatenated arrays, in the exact
    order the kernel must produce.
    """
    offsets = [np.concatenate([[0], np.cumsum(c)]) for c in leg_counts]
    combos = []
    for row in range(num_rows):
        segs = []
        for keys, offs, pre in zip(leg_keys, offsets, presorted):
            idx = np.arange(int(offs[row]), int(offs[row + 1]), dtype=np.int64)
            seg_keys = np.asarray(keys)[idx] if len(idx) else np.asarray(keys)[:0]
            if not pre and len(idx) > 1:
                order = np.argsort(seg_keys, kind="stable")
                idx = idx[order]
                seg_keys = seg_keys[order]
            segs.append((seg_keys, idx))
        if any(len(seg_keys) == 0 for seg_keys, _ in segs):
            continue
        common = sorted(set(segs[0][0].tolist()))
        common = [
            value
            for value in common
            if all(value in seg_keys for seg_keys, _ in segs[1:])
        ]
        for value in common:
            per_leg = [idx[seg_keys == value] for seg_keys, idx in segs]
            for combo in itertools.product(*per_leg):
                combos.append((row, value, tuple(int(p) for p in combo)))
    return combos


def random_legs(rng, num_rows, num_legs, key_pool, max_len, sort_legs):
    leg_keys, leg_counts = [], []
    for _ in range(num_legs):
        counts = rng.integers(0, max_len + 1, size=num_rows)
        keys = rng.choice(key_pool, size=int(counts.sum()), replace=True)
        if sort_legs:
            offsets = np.concatenate([[0], np.cumsum(counts)])
            for row in range(num_rows):
                keys[offsets[row] : offsets[row + 1]] = np.sort(
                    keys[offsets[row] : offsets[row + 1]]
                )
        leg_keys.append(keys)
        leg_counts.append(counts.astype(np.int64))
    return leg_keys, leg_counts


def assert_matches_reference(result, leg_keys, leg_counts, num_rows, presorted):
    expected = reference_combos(leg_keys, leg_counts, num_rows, presorted)
    assert result.total == len(expected)
    rows = result.combo_rows()
    keys = result.expanded_keys()
    assert rows.tolist() == [row for row, _, _ in expected]
    assert keys.tolist() == [key for _, key, _ in expected]
    assert result.positions is not None
    got_positions = list(zip(*(pos.tolist() for pos in result.positions)))
    assert got_positions == [combo for _, _, combo in expected]
    expected_counts = np.bincount(
        [row for row, _, _ in expected], minlength=num_rows
    ).tolist()
    assert result.counts_out.tolist() == expected_counts
    assert int(result.multiplicity.sum()) == result.total


# ----------------------------------------------------------------------
# randomized equivalence
# ----------------------------------------------------------------------
class TestKernelEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("num_legs", [2, 3])
    def test_random_presorted(self, seed, num_legs):
        rng = np.random.default_rng(seed)
        num_rows = int(rng.integers(1, 12))
        leg_keys, leg_counts = random_legs(
            rng, num_rows, num_legs, np.arange(15, dtype=np.int64), 6, True
        )
        presorted = [True] * num_legs
        result = intersect_segments(leg_keys, leg_counts, num_rows, presorted)
        assert_matches_reference(result, leg_keys, leg_counts, num_rows, presorted)

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_random_unsorted_legs(self, seed):
        """Unsorted legs are segment-sorted inside the kernel, positions map back."""
        rng = np.random.default_rng(seed)
        num_rows = int(rng.integers(1, 10))
        leg_keys, leg_counts = random_legs(
            rng, num_rows, 2, np.arange(10, dtype=np.int64), 5, False
        )
        presorted = [False, False]
        result = intersect_segments(leg_keys, leg_counts, num_rows, presorted)
        assert_matches_reference(result, leg_keys, leg_counts, num_rows, presorted)

    @pytest.mark.parametrize("seed", [8, 9])
    def test_mixed_sortedness(self, seed):
        rng = np.random.default_rng(seed)
        num_rows = 8
        sorted_keys, sorted_counts = random_legs(
            rng, num_rows, 1, np.arange(12, dtype=np.int64), 5, True
        )
        unsorted_keys, unsorted_counts = random_legs(
            rng, num_rows, 1, np.arange(12, dtype=np.int64), 5, False
        )
        leg_keys = [sorted_keys[0], unsorted_keys[0]]
        leg_counts = [sorted_counts[0], unsorted_counts[0]]
        presorted = [True, False]
        result = intersect_segments(leg_keys, leg_counts, num_rows, presorted)
        assert_matches_reference(result, leg_keys, leg_counts, num_rows, presorted)

    def test_float_keys_rank_encoded(self):
        """Float join keys (MULTI-EXTEND equality keys) use the rank path."""
        leg_keys = [
            np.array([0.5, 1.25, 1.25, np.inf, 0.5, 2.0]),
            np.array([1.25, np.inf, 0.5, 3.0]),
        ]
        leg_counts = [np.array([4, 2]), np.array([2, 2])]
        presorted = [True, True]
        result = intersect_segments(leg_keys, leg_counts, 2, presorted)
        assert_matches_reference(result, leg_keys, leg_counts, 2, presorted)

    def test_nan_keys_never_join(self):
        """NaN != NaN: NaN keys must not intersect, even with themselves."""
        leg_keys = [
            np.array([1.0, np.nan, np.nan]),
            np.array([1.0, np.nan]),
        ]
        leg_counts = [np.array([3]), np.array([2])]
        result = intersect_segments(leg_keys, leg_counts, 1, [True, True])
        assert result.total == 1
        assert result.expanded_keys().tolist() == [1.0]
        # Single leg: each NaN forms its own group and decodes back to NaN.
        single = intersect_segments(
            [leg_keys[0]], [leg_counts[0]], 1, [True]
        )
        assert single.total == 3
        expanded = single.expanded_keys()
        assert expanded[0] == 1.0 and np.isnan(expanded[1]) and np.isnan(expanded[2])

    def test_int64_null_markers_rank_encoded(self):
        """Keys near int64 max (null markers) cannot be packed; rank path."""
        null = np.iinfo(np.int64).max
        leg_keys = [
            np.array([3, 7, null, null], dtype=np.int64),
            np.array([7, null], dtype=np.int64),
        ]
        leg_counts = [np.array([4]), np.array([2])]
        result = intersect_segments(leg_keys, leg_counts, 1, [True, True])
        assert_matches_reference(result, leg_keys, leg_counts, 1, [True, True])

    def test_empty_rows_and_empty_result(self):
        leg_keys = [
            np.array([1, 2, 5], dtype=np.int64),
            np.array([3, 4], dtype=np.int64),
        ]
        leg_counts = [np.array([0, 3, 0]), np.array([1, 1, 0])]
        result = intersect_segments(leg_keys, leg_counts, 3, [True, True])
        assert result.total == 0
        assert result.counts_out.tolist() == [0, 0, 0]
        assert all(len(pos) == 0 for pos in result.positions)

    def test_entirely_empty_leg(self):
        leg_keys = [np.array([1, 2], dtype=np.int64), np.empty(0, dtype=np.int64)]
        leg_counts = [np.array([2]), np.array([0])]
        result = intersect_segments(leg_keys, leg_counts, 1, [True, True])
        assert result.total == 0
        assert result.counts_out.tolist() == [0]

    def test_need_positions_false(self):
        leg_keys = [
            np.array([1, 2, 2], dtype=np.int64),
            np.array([2, 3], dtype=np.int64),
        ]
        leg_counts = [np.array([3]), np.array([2])]
        result = intersect_segments(
            leg_keys, leg_counts, 1, [True, True], need_positions=False
        )
        assert result.positions is None
        assert result.total == 2  # parallel entries of key 2 in leg 0
        assert result.expanded_keys().tolist() == [2, 2]

    @pytest.mark.parametrize("seed", [14, 15])
    def test_single_leg_groups_by_key(self, seed):
        """One leg degenerates to key-grouped expansion (single-leg MULTI-EXTEND)."""
        rng = np.random.default_rng(seed)
        num_rows = int(rng.integers(1, 8))
        leg_keys, leg_counts = random_legs(
            rng, num_rows, 1, np.arange(6, dtype=np.int64), 5, True
        )
        result = intersect_segments(leg_keys, leg_counts, num_rows, [True])
        assert_matches_reference(result, leg_keys, leg_counts, num_rows, [True])

    def test_zero_legs_rejected(self):
        with pytest.raises(ValueError):
            intersect_segments([], [], 1, [])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            intersect_segments(
                [np.array([1]), np.array([1])],
                [np.array([1]), np.array([1])],
                1,
                [True, True],
                strategy="bogus",
            )


# ----------------------------------------------------------------------
# membership strategies
# ----------------------------------------------------------------------
class TestStrategies:
    @pytest.mark.parametrize("strategy", ["merge", "gallop", "hash"])
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_forced_strategies_agree(self, strategy, seed):
        rng = np.random.default_rng(seed)
        num_rows = int(rng.integers(2, 10))
        leg_keys, leg_counts = random_legs(
            rng, num_rows, 3, np.arange(20, dtype=np.int64), 6, True
        )
        presorted = [True, True, True]
        adaptive = intersect_segments(leg_keys, leg_counts, num_rows, presorted)
        forced = intersect_segments(
            leg_keys, leg_counts, num_rows, presorted, strategy=strategy
        )
        assert forced.total == adaptive.total
        assert forced.group_rows.tolist() == adaptive.group_rows.tolist()
        assert forced.group_keys.tolist() == adaptive.group_keys.tolist()
        assert forced.multiplicity.tolist() == adaptive.multiplicity.tolist()
        assert forced.counts_out.tolist() == adaptive.counts_out.tolist()
        for forced_pos, adaptive_pos in zip(forced.positions, adaptive.positions):
            assert forced_pos.tolist() == adaptive_pos.tolist()

    def test_forced_hash_respects_span_cap(self):
        """Forcing hash on an astronomically sparse span must not allocate
        a span-sized table; it degrades to merge with identical results."""
        huge = np.int64(1) << 60
        leg_keys = [
            np.array([3, huge], dtype=np.int64),
            np.array([huge], dtype=np.int64),
        ]
        leg_counts = [np.array([2]), np.array([1])]
        result = intersect_segments(
            leg_keys, leg_counts, 1, [True, True], strategy="hash"
        )
        assert result.total == 1
        assert result.expanded_keys().tolist() == [huge]

    def test_chooser_thresholds(self):
        # Few candidates vs a long leg: per-candidate binary search.
        assert choose_strategy(10, 10 * GALLOP_RATIO, 10**9) == "gallop"
        # Dense key span: table probe.
        assert choose_strategy(100, 100, HASH_TABLE_DENSITY * 200) == "hash"
        # Comparable sizes over a sparse span: sort-based merge.
        assert choose_strategy(100, 100, 10**9) == "merge"


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
class TestHelpers:
    def test_dedup_sorted(self):
        assert dedup_sorted(np.array([], dtype=np.int64)).tolist() == []
        assert dedup_sorted(np.array([4])).tolist() == [4]
        values = np.array([1, 1, 2, 5, 5, 5, 9])
        assert dedup_sorted(values).tolist() == [1, 2, 5, 9]
        rng = np.random.default_rng(3)
        random_sorted = np.sort(rng.integers(0, 50, size=300))
        assert dedup_sorted(random_sorted).tolist() == np.unique(random_sorted).tolist()

    def test_combo_positions_order(self):
        # Two groups: sizes (2, 1) and (1, 2) -> 2 and 2 combinations,
        # last leg iterating fastest.
        lefts = [np.array([0, 2]), np.array([0, 1])]
        sizes = [np.array([2, 1]), np.array([1, 2])]
        multiplicity = np.array([2, 2])
        positions, total = combo_positions(lefts, sizes, multiplicity)
        assert total == 4
        assert positions[0].tolist() == [0, 1, 2, 2]
        assert positions[1].tolist() == [0, 0, 1, 2]

    def test_combo_positions_empty(self):
        positions, total = combo_positions(
            [np.empty(0, dtype=np.int64)],
            [np.empty(0, dtype=np.int64)],
            np.empty(0, dtype=np.int64),
        )
        assert total == 0
        assert positions[0].tolist() == []
