"""Tests for the graph schema: label dictionaries and property definitions."""

import pytest

from repro.errors import SchemaError
from repro.graph.schema import GraphSchema, PropertyDef
from repro.graph.types import PropertyType


class TestLabelDictionaries:
    def test_labels_get_dense_codes(self):
        schema = GraphSchema()
        assert schema.add_vertex_label("Account") == 0
        assert schema.add_vertex_label("Customer") == 1
        assert schema.add_edge_label("Wire") == 0
        assert schema.add_edge_label("Owns") == 1

    def test_adding_same_label_is_idempotent(self):
        schema = GraphSchema()
        assert schema.add_vertex_label("Account") == 0
        assert schema.add_vertex_label("Account") == 0
        assert schema.num_vertex_labels == 1

    def test_label_code_roundtrip(self):
        schema = GraphSchema()
        schema.add_edge_label("Wire")
        schema.add_edge_label("DirDeposit")
        assert schema.edge_label_code("DirDeposit") == 1
        assert schema.edge_labels.name(1) == "DirDeposit"

    def test_unknown_label_raises(self):
        schema = GraphSchema()
        with pytest.raises(SchemaError):
            schema.vertex_label_code("Nope")

    def test_label_membership(self):
        schema = GraphSchema()
        schema.add_vertex_label("User")
        assert "User" in schema.vertex_labels
        assert "Admin" not in schema.vertex_labels


class TestPropertyDefs:
    def test_categorical_property_requires_categories(self):
        schema = GraphSchema()
        with pytest.raises(SchemaError):
            schema.add_edge_property("currency", PropertyType.CATEGORICAL)

    def test_non_categorical_property_rejects_categories(self):
        schema = GraphSchema()
        with pytest.raises(SchemaError):
            schema.add_edge_property("amt", PropertyType.INT, categories=["a"])

    def test_category_code_roundtrip(self):
        schema = GraphSchema()
        prop = schema.add_edge_property(
            "currency", PropertyType.CATEGORICAL, categories=["USD", "EUR"]
        )
        assert prop.code_of("EUR") == 1
        assert prop.category_of(0) == "USD"

    def test_unknown_category_raises(self):
        prop = PropertyDef("c", PropertyType.CATEGORICAL, ("USD",))
        with pytest.raises(SchemaError):
            prop.code_of("GBP")
        with pytest.raises(SchemaError):
            prop.category_of(5)

    def test_re_registering_with_same_type_returns_existing(self):
        schema = GraphSchema()
        first = schema.add_vertex_property("age", PropertyType.INT)
        second = schema.add_vertex_property("age", PropertyType.INT)
        assert first is second

    def test_re_registering_with_different_type_raises(self):
        schema = GraphSchema()
        schema.add_vertex_property("age", PropertyType.INT)
        with pytest.raises(SchemaError):
            schema.add_vertex_property("age", PropertyType.FLOAT)

    def test_num_categories_on_non_categorical_raises(self):
        prop = PropertyDef("amt", PropertyType.INT)
        with pytest.raises(SchemaError):
            _ = prop.num_categories

    def test_property_lookup(self):
        schema = GraphSchema()
        schema.add_edge_property("amt", PropertyType.INT)
        assert schema.has_edge_property("amt")
        assert not schema.has_edge_property("date")
        assert schema.edge_property("amt").ptype is PropertyType.INT
        with pytest.raises(SchemaError):
            schema.edge_property("date")

    def test_describe_mentions_labels_and_properties(self):
        schema = GraphSchema()
        schema.add_vertex_label("Account")
        schema.add_edge_property("amt", PropertyType.INT)
        text = schema.describe()
        assert "Account" in text
        assert "amt" in text
