"""Hypothesis property tests for the predicate algebra.

These pin down the two facts the INDEX STORE relies on:

* ``normalized()`` preserves the meaning of a comparison, and
* ``comparison_subsumes(a, b)`` is *sound*: whenever it returns True, every
  value satisfying ``b`` also satisfies ``a`` (an index whose lists guarantee
  ``a`` can therefore serve a query needing ``b``).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import GraphBuilder
from repro.predicates import CompareOp, Comparison, Constant, PropertyRef, cmp, comparison_subsumes, prop

_OPS = ["<", "<=", ">", ">=", "=", "<>"]
_RANGE_OPS = ["<", "<=", ">", ">=", "="]


def _tiny_graph(x_value, y_value):
    """A two-vertex graph carrying the generated property values."""
    builder = GraphBuilder()
    a = builder.add_vertex("V", val=int(x_value))
    b = builder.add_vertex("V", val=int(y_value))
    builder.add_edge(a, b, "E")
    return builder.build()


class TestNormalizationPreservesMeaning:
    @settings(max_examples=200, deadline=None)
    @given(
        op=st.sampled_from(_OPS),
        flip=st.booleans(),
        x=st.integers(min_value=-50, max_value=50),
        y=st.integers(min_value=-50, max_value=50),
        offset=st.integers(min_value=-10, max_value=10),
    )
    def test_cross_variable_normalization(self, op, flip, x, y, offset):
        graph = _tiny_graph(x, y)
        left = prop("a", "val")
        right = prop("b", "val")
        comparison = cmp(left if not flip else right, op, right if not flip else left, offset=float(offset))
        binding = {"a": ("vertex", 0), "b": ("vertex", 1)}
        original = comparison.evaluate(graph, binding)
        normalized = comparison.normalized().evaluate(graph, binding)
        assert original == normalized

    @settings(max_examples=200, deadline=None)
    @given(
        op=st.sampled_from(_OPS),
        x=st.integers(min_value=-50, max_value=50),
        constant=st.integers(min_value=-50, max_value=50),
        constant_left=st.booleans(),
    )
    def test_constant_normalization(self, op, x, constant, constant_left):
        graph = _tiny_graph(x, 0)
        reference = prop("a", "val")
        if constant_left:
            comparison = Comparison(Constant(constant), _op(op), reference)
        else:
            comparison = cmp(reference, op, constant)
        binding = {"a": ("vertex", 0)}
        assert comparison.evaluate(graph, binding) == comparison.normalized().evaluate(
            graph, binding
        )


def _op(symbol: str) -> CompareOp:
    return {
        "<": CompareOp.LT,
        "<=": CompareOp.LE,
        ">": CompareOp.GT,
        ">=": CompareOp.GE,
        "=": CompareOp.EQ,
        "<>": CompareOp.NE,
    }[symbol]


class TestSubsumptionSoundness:
    @settings(max_examples=300, deadline=None)
    @given(
        index_op=st.sampled_from(_RANGE_OPS),
        query_op=st.sampled_from(_RANGE_OPS),
        index_bound=st.integers(min_value=-20, max_value=20),
        query_bound=st.integers(min_value=-20, max_value=20),
        value=st.integers(min_value=-30, max_value=30),
    )
    def test_constant_range_subsumption_is_sound(
        self, index_op, query_op, index_bound, query_bound, value
    ):
        reference = prop("e", "amt")
        index_comp = cmp(reference, index_op, index_bound)
        query_comp = cmp(reference, query_op, query_bound)
        if not comparison_subsumes(index_comp, query_comp):
            return
        # Soundness: any value satisfying the query comparison satisfies the
        # index comparison.
        satisfies_query = _op(query_op).apply(value, query_bound)
        satisfies_index = _op(index_op).apply(value, index_bound)
        if satisfies_query:
            assert satisfies_index

    @settings(max_examples=200, deadline=None)
    @given(
        op=st.sampled_from(_OPS),
        x=st.integers(min_value=-20, max_value=20),
        y=st.integers(min_value=-20, max_value=20),
        offset=st.integers(min_value=-5, max_value=5),
    )
    def test_cross_variable_subsumption_is_sound(self, op, x, y, offset):
        graph = _tiny_graph(x, y)
        binding = {"a": ("vertex", 0), "b": ("vertex", 1)}
        forward = cmp(prop("a", "val"), op, prop("b", "val"), offset=float(offset))
        flipped = forward.normalized()
        # A comparison and its normalized form must subsume each other and
        # evaluate identically.
        assert comparison_subsumes(forward, flipped)
        assert comparison_subsumes(flipped, forward)
        assert forward.evaluate(graph, binding) == flipped.evaluate(graph, binding)
