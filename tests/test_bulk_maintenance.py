"""Tests for columnar bulk maintenance: delta buffers, incremental merges.

Covers the maintenance-churn guarantees of the columnar update path:

* ``merge_sorted_runs`` (the vectorized splice) against a lexsort oracle,
  on both the packed-composite fast path and the lexsort fallback;
* randomized interleaved bulk inserts/deletes + flushes asserting that the
  incremental merge is byte-identical (CSR offsets, ID lists, offset lists)
  to the rebuild-from-scratch oracle across all four index kinds (primary
  forward/backward, secondary vertex-partitioned, secondary
  edge-partitioned);
* engine-vs-naive query equivalence on the mutated graph;
* bulk APIs vs scalar wrappers vs the legacy tuple-at-a-time buffering.
"""

import numpy as np
import pytest

from repro import Database, Direction, EdgeAdjacencyType
from repro.errors import MaintenanceError
from repro.graph.generators import FinancialGraphSpec, generate_financial_graph
from repro.index.config import IndexConfig
from repro.index.views import OneHopView, TwoHopView
from repro.predicates import Predicate, cmp, prop
from repro.query.naive import NaiveMatcher
from repro.query.pattern import QueryGraph
from repro.storage.csr import NestedCSR, merge_sorted_runs
from repro.storage.sort_keys import SortKey


def small_financial_graph(num_vertices=60, num_edges=240, seed=31):
    return generate_financial_graph(
        FinancialGraphSpec(
            num_vertices=num_vertices,
            num_edges=num_edges,
            num_cities=5,
            skew=0.3,
            seed=seed,
        )
    )


def database_with_secondary_indexes(graph) -> Database:
    """One VP index (own sort keys) + one EP index over a date window."""
    db = Database(graph)
    db.create_vertex_index(
        OneHopView("BigWire", predicate=Predicate.of(cmp(prop("eadj", "amt"), ">", 500))),
        directions=(Direction.FORWARD,),
        config=IndexConfig(
            partition_keys=(),
            sort_keys=(SortKey.edge_property("date"), SortKey.neighbour_id()),
        ),
        name="BigWire",
    )
    view = TwoHopView(
        "EPd",
        EdgeAdjacencyType.DST_FW,
        Predicate.of(
            cmp(prop("eb", "date"), "<", prop("eadj", "date")),
            cmp(prop("eadj", "date"), "<", prop("eb", "date"), offset=400.0),
        ),
    )
    db.create_edge_index(view, config=IndexConfig.flat(), name="EPd")
    return db


def assert_stores_identical(db_a: Database, db_b: Database) -> None:
    """Byte-identical graphs and indexes across all four index kinds."""
    ga, gb = db_a.graph, db_b.graph
    assert np.array_equal(ga.edge_src, gb.edge_src)
    assert np.array_equal(ga.edge_dst, gb.edge_dst)
    assert np.array_equal(ga.edge_labels, gb.edge_labels)
    for name in ga.schema.edge_property_names:
        col_a, col_b = ga.edge_props.column(name), gb.edge_props.column(name)
        if isinstance(col_a, list):
            assert col_a == col_b, name
        else:
            assert np.array_equal(col_a, col_b, equal_nan=True), name
    for direction in (Direction.FORWARD, Direction.BACKWARD):
        ia = db_a.primary_index.for_direction(direction)
        ib = db_b.primary_index.for_direction(direction)
        assert np.array_equal(ia.csr.offsets, ib.csr.offsets)
        assert np.array_equal(ia.id_lists.edge_ids, ib.id_lists.edge_ids)
        assert np.array_equal(ia.id_lists.nbr_ids, ib.id_lists.nbr_ids)
        assert ia.nbytes() == ib.nbytes()
    assert len(db_a.store.vertex_indexes) == len(db_b.store.vertex_indexes)
    for ia, ib in zip(db_a.store.vertex_indexes, db_b.store.vertex_indexes):
        assert np.array_equal(ia.csr.offsets, ib.csr.offsets)
        assert np.array_equal(ia.offset_lists.offsets, ib.offset_lists.offsets)
        assert np.array_equal(ia.offset_lists.bound_of_entry, ib.offset_lists.bound_of_entry)
        assert ia.nbytes() == ib.nbytes()
    assert len(db_a.store.edge_indexes) == len(db_b.store.edge_indexes)
    for ia, ib in zip(db_a.store.edge_indexes, db_b.store.edge_indexes):
        assert np.array_equal(ia.csr.offsets, ib.csr.offsets)
        assert np.array_equal(ia.offset_lists.offsets, ib.offset_lists.offsets)
        assert np.array_equal(ia.offset_lists.bound_of_entry, ib.offset_lists.bound_of_entry)
        assert ia.nbytes() == ib.nbytes()


def random_batch(rng, num_vertices, count, with_props=True):
    src = rng.integers(0, num_vertices, size=count)
    dst = rng.integers(0, num_vertices, size=count)
    if not with_props:
        return src, dst, None
    return src, dst, dict(
        amt=rng.integers(1, 1000, size=count),
        date=rng.integers(0, 1800, size=count),
        currency=rng.integers(0, 4, size=count),
    )


class TestMergeSortedRuns:
    def _oracle(self, base_keys, delta_keys, base_first):
        indicator = np.concatenate(
            [np.zeros(len(base_keys[0]), int), np.ones(len(delta_keys[0]), int)]
        )
        if not base_first:
            indicator = 1 - indicator
        stacked = [
            np.concatenate([b, d]) for b, d in zip(base_keys, delta_keys)
        ]
        order = np.lexsort(tuple([indicator] + list(reversed(stacked))))
        inverse = np.empty(len(order), dtype=np.int64)
        inverse[order] = np.arange(len(order))
        return inverse[: len(base_keys[0])], inverse[len(base_keys[0]) :]

    @pytest.mark.parametrize("base_first", [True, False])
    def test_random_int_keys_match_lexsort_oracle(self, base_first):
        rng = np.random.default_rng(3)
        for _ in range(20):
            nb, nd = int(rng.integers(0, 40)), int(rng.integers(0, 40))
            def run(n):
                keys = [rng.integers(0, 6, size=n), rng.integers(0, 4, size=n)]
                order = np.lexsort(tuple(reversed(keys)))
                return [k[order] for k in keys]
            base, delta = run(nb), run(nd)
            got = merge_sorted_runs(base, delta, base_first_on_ties=base_first)
            want = self._oracle(base, delta, base_first)
            assert got[0].tolist() == want[0].tolist()
            assert got[1].tolist() == want[1].tolist()

    def test_huge_domain_uses_fallback_and_matches(self):
        # int64 null markers blow up the packed domain: the lexsort fallback
        # must produce the same merge.
        null = np.iinfo(np.int64).max
        base = [np.array([0, 0, 1, 1]), np.array([5, null, 2, null])]
        delta = [np.array([0, 1, 1]), np.array([5, 1, null])]
        got = merge_sorted_runs(base, delta)
        want = self._oracle(base, delta, True)
        assert got[0].tolist() == want[0].tolist()
        assert got[1].tolist() == want[1].tolist()

    def test_float_keys_rank_encoded(self):
        base = [np.array([0, 0, 2]), np.array([0.5, 1.5, np.inf])]
        delta = [np.array([0, 2]), np.array([1.0, 0.25])]
        got = merge_sorted_runs(base, delta)
        want = self._oracle(base, delta, True)
        assert got[0].tolist() == want[0].tolist()
        assert got[1].tolist() == want[1].tolist()

    def test_empty_runs(self):
        base = [np.array([1, 2])]
        empty = [np.empty(0, dtype=np.int64)]
        b, d = merge_sorted_runs(base, empty)
        assert b.tolist() == [0, 1] and d.tolist() == []
        b, d = merge_sorted_runs(empty, base)
        assert b.tolist() == [] and d.tolist() == [0, 1]

    def test_from_sorted_groups_rejects_unsorted(self):
        from repro.errors import IndexLookupError

        with pytest.raises(IndexLookupError):
            NestedCSR.from_sorted_groups(4, [], np.array([2, 1]))


class TestIncrementalEqualsScratch:
    def test_randomized_churn_identical_across_index_kinds(self):
        graph = small_financial_graph()
        db_inc = database_with_secondary_indexes(graph)
        db_scr = database_with_secondary_indexes(graph)
        m_inc = db_inc.maintainer(merge_threshold=10**9)
        m_scr = db_scr.maintainer(merge_threshold=10**9)
        rng = np.random.default_rng(7)
        for _ in range(5):
            count = int(rng.integers(5, 40))
            # Every other round omits the properties so the pending edges
            # carry nulls, exercising the null sort markers (rank-encoded
            # splice keys) and the null partitions.
            src, dst, props = random_batch(rng, 60, count, with_props=bool(rng.integers(0, 2)))
            for maintainer in (m_inc, m_scr):
                maintainer.insert_edges(src, dst, "Wire", properties=props)
            num_deletes = int(rng.integers(0, 15))
            if num_deletes:
                deletes = rng.choice(db_inc.graph.num_edges, size=num_deletes, replace=False)
                for maintainer in (m_inc, m_scr):
                    maintainer.delete_edges(deletes)
            m_inc.flush(incremental=True)
            m_scr.flush(incremental=False)
            assert_stores_identical(db_inc, db_scr)

    def test_churn_with_partitioned_primary(self):
        # Default primary config partitions by edge label: exercises the
        # nested-level group folding in the splice.
        graph = small_financial_graph(seed=5)
        db_inc, db_scr = Database(graph), Database(graph)
        m_inc = db_inc.maintainer(merge_threshold=10**9)
        m_scr = db_scr.maintainer(merge_threshold=10**9)
        rng = np.random.default_rng(11)
        for _ in range(3):
            count = int(rng.integers(10, 30))
            src, dst, props = random_batch(rng, 60, count)
            labels = np.where(rng.integers(0, 2, size=count) == 0, "Wire", "DirDeposit")
            deletes = rng.choice(db_inc.graph.num_edges, size=5, replace=False)
            for maintainer in (m_inc, m_scr):
                maintainer.insert_edges(src, dst, labels.tolist(), properties=props)
                maintainer.delete_edges(deletes)
            m_inc.flush(incremental=True)
            m_scr.flush(incremental=False)
            assert_stores_identical(db_inc, db_scr)

    def test_tombstone_only_flush(self):
        graph = small_financial_graph()
        db_inc = database_with_secondary_indexes(graph)
        db_scr = database_with_secondary_indexes(graph)
        m_inc = db_inc.maintainer(merge_threshold=10**9)
        m_scr = db_scr.maintainer(merge_threshold=10**9)
        for maintainer in (m_inc, m_scr):
            maintainer.delete_edges(np.array([0, 3, 17, 99]))
        m_inc.flush(incremental=True)
        m_scr.flush(incremental=False)
        assert db_inc.graph.num_edges == graph.num_edges - 4
        assert_stores_identical(db_inc, db_scr)


class TestQueryEquivalenceAfterChurn:
    def test_engine_matches_naive_on_mutated_graph(self):
        graph = small_financial_graph(num_edges=160)
        db = database_with_secondary_indexes(graph)
        maintainer = db.maintainer(merge_threshold=10**9)
        rng = np.random.default_rng(13)
        for _ in range(3):
            src, dst, props = random_batch(rng, 60, 25)
            maintainer.insert_edges(src, dst, "Wire", properties=props)
            maintainer.delete_edges(rng.choice(db.graph.num_edges, size=8, replace=False))
            maintainer.flush()

        query = QueryGraph("two-hop")
        for name in ("a", "b", "c"):
            query.add_vertex(name, label="Account")
        query.add_edge("a", "b", name="e1", label="Wire")
        query.add_edge("b", "c", name="e2")
        query.add_predicate(cmp(prop("e1", "amt"), ">", 300))
        assert db.count(query) == NaiveMatcher(db.graph).count(query)


class TestBulkVsScalarVsLegacy:
    def test_three_buffering_paths_produce_identical_state(self):
        graph = small_financial_graph(num_edges=120)
        rng = np.random.default_rng(17)
        src, dst, props = random_batch(rng, 60, 30)
        deletes = np.array([2, 40, 41, 99])

        db_bulk = database_with_secondary_indexes(graph)
        bulk = db_bulk.maintainer(merge_threshold=10**9)
        bulk.insert_edges(src, dst, "Wire", properties=props)
        bulk.delete_edges(deletes)
        bulk.flush()

        db_scalar = database_with_secondary_indexes(graph)
        scalar = db_scalar.maintainer(merge_threshold=10**9)
        for i in range(len(src)):
            scalar.insert_edge(
                int(src[i]), int(dst[i]), "Wire",
                amt=int(props["amt"][i]), date=int(props["date"][i]),
                currency=int(props["currency"][i]),
            )
        for edge_id in deletes:
            scalar.delete_edge(int(edge_id))
        scalar.flush()

        db_legacy = database_with_secondary_indexes(graph)
        legacy = db_legacy.maintainer(merge_threshold=10**9, columnar=False)
        assert not legacy.incremental
        for i in range(len(src)):
            legacy.insert_edge(
                int(src[i]), int(dst[i]), "Wire",
                amt=int(props["amt"][i]), date=int(props["date"][i]),
                currency=int(props["currency"][i]),
            )
        for edge_id in deletes:
            legacy.delete_edge(int(edge_id))
        legacy.flush()

        assert_stores_identical(db_bulk, db_scalar)
        assert_stores_identical(db_bulk, db_legacy)

    def test_stats_match_legacy_counting(self):
        graph = small_financial_graph(num_edges=120)
        db_a = database_with_secondary_indexes(graph)
        db_b = database_with_secondary_indexes(graph)
        bulk = db_a.maintainer(merge_threshold=10**9)
        legacy = db_b.maintainer(merge_threshold=10**9, columnar=False)
        rng = np.random.default_rng(19)
        src, dst, props = random_batch(rng, 60, 12)
        bulk.insert_edges(src, dst, "Wire", properties=props)
        for i in range(len(src)):
            legacy.insert_edge(
                int(src[i]), int(dst[i]), "Wire",
                amt=int(props["amt"][i]), date=int(props["date"][i]),
                currency=int(props["currency"][i]),
            )
        for stat in (
            "inserted_edges",
            "buffered_operations",
            "secondary_predicate_evaluations",
            "edge_partitioned_probes",
        ):
            assert getattr(bulk.stats, stat) == getattr(legacy.stats, stat), stat

    def test_bulk_validation_errors(self):
        graph = small_financial_graph()
        maintainer = Database(graph).maintainer()
        with pytest.raises(MaintenanceError):
            maintainer.insert_edges([0, 1], [1], "Wire")
        with pytest.raises(MaintenanceError):
            maintainer.insert_edges([0], [10_000], "Wire")
        with pytest.raises(MaintenanceError):
            maintainer.insert_edges([0], [1], "Nope")
        with pytest.raises(MaintenanceError):
            maintainer.delete_edges([10_000_000])
        legacy = Database(graph).maintainer(columnar=False)
        with pytest.raises(MaintenanceError):
            legacy.insert_edges([0], [1], "Wire")

    def test_merge_threshold_triggers_bulk_flush(self):
        graph = small_financial_graph()
        db = Database(graph)
        maintainer = db.maintainer(merge_threshold=6)
        src = np.arange(5)
        maintainer.insert_edges(src, src + 1, "Wire", properties=dict(amt=np.ones(5, int)))
        assert maintainer.stats.merges == 1
        assert db.graph.num_edges == graph.num_edges + 5
