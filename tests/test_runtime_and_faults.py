"""Unit tests for the query-runtime guardrails and the fault-injection hooks.

These are the deterministic, pool-free halves of the robustness layer:
:class:`~repro.query.runtime.QueryContext` driven by an injected fake clock,
:class:`~repro.query.faults.FaultPlan` parsing and trigger predicates, the
checksummed reply envelope, and the typed configuration errors.  The
end-to-end chaos scenarios (real pools, real worker deaths) live in
``tests/test_fault_injection.py``.
"""

from __future__ import annotations

import dataclasses
import pickle

import numpy as np
import pytest

from repro.errors import (
    ExecutionError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
)
from repro.query.backends import (
    BACKEND_ENV_VAR,
    MORSEL_TIMEOUT_ENV_VAR,
    _corrupt_reply,
    reply_checksum,
    resolve_backend,
    resolve_morsel_timeout,
)
from repro.query.faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    InjectedWorkerCrash,
)
from repro.query.operators import ExecutionStats
from repro.query.runtime import (
    CancellationToken,
    QueryContext,
    make_runtime,
)


class FakeClock:
    """Injectable monotonic clock: tests advance it explicitly."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# QueryContext
# ----------------------------------------------------------------------
class TestQueryContext:
    def test_no_deadline_never_expires(self):
        context = QueryContext(clock=FakeClock())
        assert context.remaining() is None
        assert not context.expired()
        context.check()  # no-op

    def test_deadline_fixed_at_construction(self):
        clock = FakeClock(100.0)
        context = QueryContext(timeout=5.0, clock=clock)
        assert context.remaining() == pytest.approx(5.0)
        clock.advance(3.0)
        assert context.remaining() == pytest.approx(2.0)
        assert not context.expired()
        clock.advance(2.0)
        assert context.expired()

    def test_expired_check_raises_timeout_with_stats(self):
        clock = FakeClock()
        context = QueryContext(timeout=1.0, clock=clock)
        clock.advance(1.5)
        stats = ExecutionStats(output_rows=7)
        with pytest.raises(QueryTimeoutError) as excinfo:
            context.check(stats)
        assert excinfo.value.stats is stats
        assert excinfo.value.timeout == 1.0
        assert stats.deadline_remaining == 0.0
        # The typed error stays inside the library hierarchy.
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, ExecutionError)

    def test_cancellation_raises_with_stats(self):
        token = CancellationToken()
        context = QueryContext(cancel=token, clock=FakeClock())
        context.check()
        token.cancel()
        stats = ExecutionStats(output_rows=3)
        with pytest.raises(QueryCancelledError) as excinfo:
            context.check(stats)
        assert excinfo.value.stats is stats

    def test_cancellation_wins_over_deadline(self):
        clock = FakeClock()
        token = CancellationToken()
        context = QueryContext(timeout=1.0, cancel=token, clock=clock)
        clock.advance(2.0)
        token.cancel()
        with pytest.raises(QueryCancelledError):
            context.check()

    def test_request_abort_sets_the_token(self):
        token = CancellationToken()
        context = QueryContext(cancel=token, clock=FakeClock())
        context.request_abort()
        assert token.cancelled
        with pytest.raises(QueryCancelledError):
            context.check()

    def test_request_abort_without_external_token(self):
        context = QueryContext(timeout=10.0, clock=FakeClock())
        context.request_abort()
        assert context.cancelled

    @pytest.mark.parametrize("timeout", [0, -1, -0.5])
    def test_non_positive_timeout_rejected(self, timeout):
        with pytest.raises(ExecutionError, match="positive"):
            QueryContext(timeout=timeout)

    def test_make_runtime_returns_none_when_unarmed(self):
        assert make_runtime(None, None) is None
        assert make_runtime(1.0, None) is not None
        assert make_runtime(None, CancellationToken()) is not None


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_empty_is_none(self):
        assert FaultPlan.parse(None) is None
        assert FaultPlan.parse("") is None
        assert FaultPlan.parse("  , ") is None

    def test_parse_kill(self):
        plan = FaultPlan.parse("kill@2")
        assert plan.kill_morsel == 2
        assert not plan.kill_every_attempt
        assert plan.kills(2, 0)
        assert not plan.kills(2, 1)  # first attempt only
        assert not plan.kills(1, 0)

    def test_parse_every_attempt_suffix(self):
        plan = FaultPlan.parse("kill@0!")
        assert plan.kills(0, 0) and plan.kills(0, 5)

    def test_parse_delay_with_seconds(self):
        plan = FaultPlan.parse("delay@1:0.25")
        assert plan.delay_morsel == 1
        assert plan.delay_seconds == pytest.approx(0.25)
        assert plan.delays(1, 0)

    def test_parse_combined_directives(self):
        plan = FaultPlan.parse("kill@0, corrupt@3!, error@5")
        assert plan.kills(0, 0)
        assert plan.corrupts(3, 2)
        assert plan.errors(5, 0) and not plan.errors(5, 1)

    @pytest.mark.parametrize(
        "spec",
        [
            "explode@2",
            "kill@x",
            "kill@-1",
            "delay@1",
            "delay@1:abc",
            "delay@1:-2",
            "kill",
        ],
    )
    def test_malformed_specs_raise_typed_error(self, spec):
        with pytest.raises(ExecutionError, match=FAULTS_ENV_VAR):
            FaultPlan.parse(spec)

    def test_apply_before_morsel_kill(self):
        plan = FaultPlan.parse("kill@1")
        plan.apply_before_morsel(0, 0)  # other morsel: no-op
        with pytest.raises(InjectedWorkerCrash):
            plan.apply_before_morsel(1, 0)
        plan.apply_before_morsel(1, 1)  # retry succeeds

    def test_apply_before_morsel_error(self):
        plan = FaultPlan.parse("error@0")
        with pytest.raises(RuntimeError, match="injected"):
            plan.apply_before_morsel(0, 0)

    def test_plan_is_picklable(self):
        plan = FaultPlan.parse("kill@2,delay@0:0.1")
        assert pickle.loads(pickle.dumps(plan)) == plan


# ----------------------------------------------------------------------
# reply envelope integrity
# ----------------------------------------------------------------------
class TestReplyChecksum:
    def _envelope(self):
        encoded = [
            (("a", "b"), [np.arange(8, dtype=np.int64), np.arange(8) * 2]),
            (("a", "b"), [np.arange(3, dtype=np.int64), np.arange(3) + 9]),
        ]
        stats_tuple = dataclasses.astuple(ExecutionStats(output_rows=11))
        return encoded, stats_tuple

    def test_checksum_is_deterministic(self):
        encoded, stats_tuple = self._envelope()
        assert reply_checksum(encoded, stats_tuple) == reply_checksum(
            encoded, stats_tuple
        )

    def test_flipped_payload_byte_changes_checksum(self):
        encoded, stats_tuple = self._envelope()
        before = reply_checksum(encoded, stats_tuple)
        encoded[1][1][0][2] ^= 1
        assert reply_checksum(encoded, stats_tuple) != before

    def test_stats_tamper_changes_checksum(self):
        encoded, stats_tuple = self._envelope()
        before = reply_checksum(encoded, stats_tuple)
        tampered = stats_tuple[:3] + (stats_tuple[3] + 1,) + stats_tuple[4:]
        assert reply_checksum(encoded, tampered) != before

    def test_structure_change_changes_checksum(self):
        encoded, stats_tuple = self._envelope()
        before = reply_checksum(encoded, stats_tuple)
        assert reply_checksum(encoded[:1], stats_tuple) != before

    def test_corrupt_reply_is_detectable(self):
        encoded, stats_tuple = self._envelope()
        checksum = reply_checksum(encoded, stats_tuple)
        shipped = _corrupt_reply(encoded, checksum)
        assert reply_checksum(encoded, stats_tuple) != shipped

    def test_corrupt_reply_without_buffers_damages_checksum(self):
        encoded = []
        stats_tuple = dataclasses.astuple(ExecutionStats())
        checksum = reply_checksum(encoded, stats_tuple)
        shipped = _corrupt_reply(encoded, checksum)
        assert shipped != checksum


# ----------------------------------------------------------------------
# typed configuration errors
# ----------------------------------------------------------------------
class TestConfigurationErrors:
    def test_resolve_backend_lists_names_and_env_var(self):
        with pytest.raises(ExecutionError) as excinfo:
            resolve_backend("treadpool")
        message = str(excinfo.value)
        for name in ("'serial'", "'thread'", "'process'"):
            assert name in message
        assert BACKEND_ENV_VAR in message
        assert isinstance(excinfo.value, ReproError)

    def test_resolve_morsel_timeout_default_and_disable(self, monkeypatch):
        monkeypatch.delenv(MORSEL_TIMEOUT_ENV_VAR, raising=False)
        assert resolve_morsel_timeout() is not None
        assert resolve_morsel_timeout(0) is None
        assert resolve_morsel_timeout(12.5) == 12.5

    def test_resolve_morsel_timeout_env_override(self, monkeypatch):
        monkeypatch.setenv(MORSEL_TIMEOUT_ENV_VAR, "3.5")
        assert resolve_morsel_timeout() == 3.5
        monkeypatch.setenv(MORSEL_TIMEOUT_ENV_VAR, "0")
        assert resolve_morsel_timeout() is None
        monkeypatch.setenv(MORSEL_TIMEOUT_ENV_VAR, "soon")
        with pytest.raises(ExecutionError, match=MORSEL_TIMEOUT_ENV_VAR):
            resolve_morsel_timeout()

    def test_negative_morsel_timeout_rejected(self):
        with pytest.raises(ExecutionError, match=">= 0"):
            resolve_morsel_timeout(-1)
