"""Tests for the INDEX STORE: registration, access-path matching, subsumption."""

import pytest

from repro.errors import IndexConfigError
from repro.graph import Direction, EdgeAdjacencyType
from repro.index.config import IndexConfig
from repro.index.edge_partitioned import EdgePartitionedIndex
from repro.index.index_store import IndexStore
from repro.index.primary import PrimaryIndex
from repro.index.vertex_partitioned import VertexPartitionedIndex
from repro.index.views import OneHopView, TwoHopView
from repro.predicates import Predicate, cmp, prop
from repro.storage.partition_keys import PartitionKey
from repro.storage.sort_keys import SortKey


@pytest.fixture()
def store(example_graph):
    return IndexStore(example_graph, PrimaryIndex(example_graph))


def register_usd_view(store, graph, threshold=50):
    view = OneHopView(
        name="BigUsd",
        predicate=Predicate.of(
            cmp(prop("eadj", "currency"), "=", "USD"),
            cmp(prop("eadj", "amt"), ">", threshold),
        ),
    )
    index = VertexPartitionedIndex(
        graph, view, Direction.FORWARD, IndexConfig.default(), store.primary.forward
    )
    store.register_vertex_index(index)
    return index


class TestRegistration:
    def test_register_and_drop(self, store, example_graph):
        index = register_usd_view(store, example_graph)
        assert index.name in store.secondary_index_names()
        with pytest.raises(IndexConfigError):
            store.register_vertex_index(index)
        store.drop_index(index.name)
        assert index.name not in store.secondary_index_names()
        with pytest.raises(IndexConfigError):
            store.drop_index("missing")

    def test_memory_breakdowns_cover_all_indexes(self, store, example_graph):
        register_usd_view(store, example_graph)
        names = {b.name for b in store.memory_breakdowns()}
        assert {"primary-fw", "primary-bw", "BigUsd-fw"} <= names
        assert store.nbytes() > 0


class TestVertexAccessPaths:
    def test_primary_always_usable(self, store):
        paths = store.find_vertex_access_paths(Direction.FORWARD, Predicate.true())
        assert len(paths) == 1
        assert paths[0].kind == "primary"
        assert not paths[0].covers_all_levels  # no edge-label value supplied

    def test_partition_values_from_label_equality(self, store):
        predicate = Predicate.of(cmp(prop("edge", "label"), "=", "Wire"))
        paths = store.find_vertex_access_paths(Direction.FORWARD, predicate)
        primary = paths[0]
        assert primary.key_values == ("Wire",)
        assert primary.covers_all_levels
        assert primary.residual == ()

    def test_secondary_matching_requires_subsumption(self, store, example_graph):
        register_usd_view(store, example_graph, threshold=50)
        # Query predicate tighter than the view: index usable, residual kept.
        tight = Predicate.of(
            cmp(prop("edge", "currency"), "=", "USD"),
            cmp(prop("edge", "amt"), ">", 100),
        )
        paths = store.find_vertex_access_paths(Direction.FORWARD, tight)
        names = {p.name for p in paths}
        assert "BigUsd-fw" in names
        secondary = next(p for p in paths if p.name == "BigUsd-fw")
        assert any("amt" in c.describe() for c in secondary.residual)

        # Query predicate weaker than the view: index unusable.
        weak = Predicate.of(cmp(prop("edge", "currency"), "=", "USD"))
        paths = store.find_vertex_access_paths(Direction.FORWARD, weak)
        assert "BigUsd-fw" not in {p.name for p in paths}

    def test_direction_mismatch_excludes_secondary(self, store, example_graph):
        register_usd_view(store, example_graph)
        paths = store.find_vertex_access_paths(
            Direction.BACKWARD,
            Predicate.of(
                cmp(prop("edge", "currency"), "=", "USD"),
                cmp(prop("edge", "amt"), ">", 100),
            ),
        )
        assert all(p.name != "BigUsd-fw" for p in paths)

    def test_estimated_list_size_shrinks_with_partition_values(self, store):
        no_keys = store.find_vertex_access_paths(Direction.FORWARD, Predicate.true())[0]
        with_label = store.find_vertex_access_paths(
            Direction.FORWARD, Predicate.of(cmp(prop("edge", "label"), "=", "Wire"))
        )[0]
        assert with_label.estimated_list_size < no_keys.estimated_list_size


class TestEdgeAccessPaths:
    def register_money_flow(self, store, graph, adjacency=EdgeAdjacencyType.DST_FW):
        view = TwoHopView(
            "MoneyFlow",
            adjacency,
            Predicate.of(
                cmp(prop("eb", "date"), "<", prop("eadj", "date")),
                cmp(prop("eadj", "amt"), "<", prop("eb", "amt")),
            ),
        )
        index = EdgePartitionedIndex(graph, view, IndexConfig.flat(), store.primary)
        store.register_edge_index(index)
        return index

    def query_predicate(self):
        return Predicate.of(
            cmp(prop("bound_edge", "date"), "<", prop("edge", "date")),
            cmp(prop("bound_edge", "amt"), ">", prop("edge", "amt")),
        )

    def test_matching_adjacency_and_predicate(self, store, example_graph):
        self.register_money_flow(store, example_graph)
        paths = store.find_edge_access_paths(
            EdgeAdjacencyType.DST_FW, self.query_predicate()
        )
        assert len(paths) == 1
        assert paths[0].uses_bound_edge
        assert paths[0].residual == ()

    def test_wrong_adjacency_not_matched(self, store, example_graph):
        self.register_money_flow(store, example_graph)
        paths = store.find_edge_access_paths(
            EdgeAdjacencyType.DST_BW, self.query_predicate()
        )
        assert paths == []

    def test_missing_predicate_not_matched(self, store, example_graph):
        self.register_money_flow(store, example_graph)
        weak = Predicate.of(cmp(prop("bound_edge", "date"), "<", prop("edge", "date")))
        paths = store.find_edge_access_paths(EdgeAdjacencyType.DST_FW, weak)
        assert paths == []

    def test_describe_mentions_indexes(self, store, example_graph):
        self.register_money_flow(store, example_graph)
        register_usd_view(store, example_graph)
        text = store.describe()
        assert "MoneyFlow" in text and "BigUsd" in text
