"""Tests for index maintenance: buffered inserts, tombstones, merge semantics."""

import numpy as np
import pytest

from repro import Database, Direction
from repro.errors import MaintenanceError
from repro.graph.generators import FinancialGraphSpec, generate_financial_graph
from repro.index.config import IndexConfig
from repro.index.views import OneHopView
from repro.predicates import Predicate, cmp, prop
from repro.query.naive import NaiveMatcher
from repro.query.pattern import QueryGraph
from repro.storage.partition_keys import PartitionKey
from repro.storage.sort_keys import SortKey
from repro.workloads import fraud


def small_financial_graph(num_edges=200, seed=31):
    return generate_financial_graph(
        FinancialGraphSpec(
            num_vertices=60, num_edges=num_edges, num_cities=5, skew=0.3, seed=seed
        )
    )


def two_hop_count_query():
    query = QueryGraph("two-hop")
    for name in ("a", "b", "c"):
        query.add_vertex(name, label="Account")
    query.add_edge("a", "b", name="e1")
    query.add_edge("b", "c", name="e2")
    return query


class TestInsertAndFlush:
    def test_insert_then_flush_updates_graph_and_queries(self):
        graph = small_financial_graph()
        db = Database(graph)
        maintainer = db.maintainer(merge_threshold=10_000)
        before_edges = db.graph.num_edges

        maintainer.insert_edge(0, 1, "Wire", amt=10, date=1, currency="USD")
        maintainer.insert_edge(1, 2, "Wire", amt=5, date=2, currency="USD")
        assert maintainer.stats.inserted_edges == 2
        # Not merged yet: the visible graph still has the old edge count.
        assert db.graph.num_edges == before_edges

        maintainer.flush()
        assert db.graph.num_edges == before_edges + 2
        # The new edges are visible to queries after the merge.
        query = QueryGraph("wire-pair")
        query.add_vertex("a", label="Account")
        query.add_vertex("b", label="Account")
        query.add_edge("a", "b", label="Wire", name="e")
        assert db.count(query) == NaiveMatcher(db.graph).count(query)

    def test_flushed_indexes_equal_rebuild_from_scratch(self):
        graph = small_financial_graph()
        db = Database(graph)
        maintainer = db.maintainer(merge_threshold=10_000)
        rng = np.random.default_rng(5)
        inserts = []
        for _ in range(30):
            src = int(rng.integers(0, graph.num_vertices))
            dst = int(rng.integers(0, graph.num_vertices))
            props = dict(
                amt=int(rng.integers(1, 1000)),
                date=int(rng.integers(0, 1800)),
                currency="USD",
            )
            inserts.append((src, dst, "Wire", props))
            maintainer.insert_edge(src, dst, "Wire", **props)
        maintainer.flush()

        rebuilt = Database(db.graph)
        for vertex in range(db.graph.num_vertices):
            got = db.primary_index.forward.list(vertex)
            expected = rebuilt.primary_index.forward.list(vertex)
            assert got[0].tolist() == expected[0].tolist()
            assert got[1].tolist() == expected[1].tolist()

    def test_merge_triggered_by_threshold(self):
        graph = small_financial_graph()
        db = Database(graph)
        maintainer = db.maintainer(merge_threshold=6)
        for index in range(5):
            maintainer.insert_edge(index, index + 1, "Wire", amt=1, date=1, currency="USD")
        assert maintainer.stats.merges >= 1
        assert db.graph.num_edges > graph.num_edges

    def test_invalid_inserts_rejected(self):
        graph = small_financial_graph()
        maintainer = Database(graph).maintainer()
        with pytest.raises(MaintenanceError):
            maintainer.insert_edge(0, 10_000, "Wire")
        with pytest.raises(MaintenanceError):
            maintainer.insert_edge(0, 1, "UnknownLabel")

    def test_delete_edge_tombstone(self):
        graph = small_financial_graph()
        db = Database(graph)
        maintainer = db.maintainer(merge_threshold=10_000)
        maintainer.delete_edge(0)
        maintainer.flush()
        assert db.graph.num_edges == graph.num_edges - 1
        # Rebuild from the merged graph agrees with the maintained store.
        rebuilt = Database(db.graph)
        for vertex in range(db.graph.num_vertices):
            assert (
                db.primary_index.forward.list(vertex)[0].tolist()
                == rebuilt.primary_index.forward.list(vertex)[0].tolist()
            )
        with pytest.raises(MaintenanceError):
            maintainer.delete_edge(10_000_000)


class TestSecondaryIndexMaintenance:
    def test_vertex_partitioned_index_kept_consistent(self):
        graph = small_financial_graph()
        db = Database(graph)
        view = OneHopView(
            "BigWire", predicate=Predicate.of(cmp(prop("eadj", "amt"), ">", 500))
        )
        db.create_vertex_index(view, directions=(Direction.FORWARD,), name="BigWire")
        maintainer = db.maintainer(merge_threshold=10_000)
        maintainer.insert_edge(3, 4, "Wire", amt=900, date=5, currency="USD")
        maintainer.insert_edge(3, 5, "Wire", amt=10, date=5, currency="USD")
        assert maintainer.stats.secondary_predicate_evaluations == 2
        maintainer.flush()

        index = db.store.vertex_indexes[0]
        selected = set()
        for vertex in range(db.graph.num_vertices):
            selected.update(index.list(vertex)[0].tolist())
        expected = {
            e
            for e in range(db.graph.num_edges)
            if (db.graph.edge_property(e, "amt") or 0) > 500
        }
        assert selected == expected

    def test_edge_partitioned_index_kept_consistent(self):
        graph = small_financial_graph(num_edges=120)
        db = Database(graph)
        alpha = fraud.amount_alpha(graph, 0.2)
        view, config = fraud.epc_view_and_config(alpha)
        db.create_edge_index(view, config=config, name="EPc")
        maintainer = db.maintainer(merge_threshold=10_000)
        maintainer.insert_edge(1, 2, "Wire", amt=400, date=900, currency="USD")
        maintainer.insert_edge(2, 3, "Wire", amt=390, date=950, currency="USD")
        assert maintainer.stats.edge_partitioned_probes > 0
        maintainer.flush()

        maintained = db.store.edge_indexes[0]
        rebuilt_db = Database(db.graph)
        rebuilt_db.create_edge_index(view, config=config, name="EPc")
        rebuilt = rebuilt_db.store.edge_indexes[0]
        assert maintained.num_indexed_edges == rebuilt.num_indexed_edges
        for eb in range(db.graph.num_edges):
            assert sorted(maintained.list(eb)[0].tolist()) == sorted(
                rebuilt.list(eb)[0].tolist()
            )

    def test_flush_without_pending_is_noop(self):
        graph = small_financial_graph()
        db = Database(graph)
        maintainer = db.maintainer()
        maintainer.flush()
        assert maintainer.stats.merges == 0
        assert db.graph.num_edges == graph.num_edges
