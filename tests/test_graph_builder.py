"""Tests for GraphBuilder, PropertyGraph and the property store."""

import numpy as np
import pytest

from repro.errors import GraphBuildError, SchemaError
from repro.graph import GraphBuilder, PropertyType
from repro.graph.generators import running_example_graph
from repro.graph.property_store import PropertyStore
from repro.graph.schema import GraphSchema


class TestGraphBuilder:
    def test_build_small_graph(self):
        builder = GraphBuilder()
        v1 = builder.add_vertex("Account", acc="SV", city="SF")
        v2 = builder.add_vertex("Account", acc="CQ", city="SF")
        edge = builder.add_edge(v1, v2, "Wire", amt=50, currency="USD")
        graph = builder.build()
        assert graph.num_vertices == 2
        assert graph.num_edges == 1
        assert edge == 0
        assert graph.edge_endpoints(0) == (v1, v2)
        assert graph.edge_label_name(0) == "Wire"
        assert graph.vertex_property(0, "city") == "SF"
        assert graph.edge_property(0, "amt") == 50
        assert graph.edge_property(0, "currency") == "USD"

    def test_vertex_keys_are_resolvable_and_unique(self):
        builder = GraphBuilder()
        builder.add_vertex("V", key="x")
        assert builder.vertex_id("x") == 0
        with pytest.raises(GraphBuildError):
            builder.add_vertex("V", key="x")
        with pytest.raises(GraphBuildError):
            builder.vertex_id("missing")

    def test_edge_endpoint_validation(self):
        builder = GraphBuilder()
        builder.add_vertex("V")
        with pytest.raises(GraphBuildError):
            builder.add_edge(0, 5, "E")

    def test_build_twice_raises(self):
        builder = GraphBuilder()
        builder.add_vertex("V")
        builder.build()
        with pytest.raises(GraphBuildError):
            builder.add_vertex("V")
        with pytest.raises(GraphBuildError):
            builder.build()

    def test_missing_property_values_are_null(self):
        builder = GraphBuilder()
        builder.add_vertex("V", age=10)
        builder.add_vertex("V")
        graph = builder.build()
        assert graph.vertex_property(0, "age") == 10
        assert graph.vertex_property(1, "age") is None

    def test_string_properties_default_to_categorical(self):
        builder = GraphBuilder()
        builder.add_vertex("V", city="SF")
        builder.add_vertex("V", city="LA")
        graph = builder.build()
        prop = graph.schema.vertex_property("city")
        assert prop.ptype is PropertyType.CATEGORICAL
        assert set(prop.categories) == {"SF", "LA"}

    def test_declared_property_type_is_respected(self):
        builder = GraphBuilder()
        builder.declare_vertex_property("score", PropertyType.FLOAT)
        builder.add_vertex("V", score=1)
        graph = builder.build()
        assert graph.schema.vertex_property("score").ptype is PropertyType.FLOAT
        assert graph.vertex_property(0, "score") == pytest.approx(1.0)


class TestRunningExample:
    def test_sizes_match_figure_1(self):
        graph = running_example_graph()
        assert graph.num_vertices == 8
        # 5 Owns edges + 20 transfers.
        assert graph.num_edges == 25
        assert graph.schema.num_vertex_labels == 2
        assert graph.schema.num_edge_labels == 3

    def test_dates_follow_transfer_ordering(self):
        graph = running_example_graph()
        transfers = [
            e
            for e in range(graph.num_edges)
            if graph.edge_label_name(e) in ("Wire", "DirDeposit")
        ]
        dates = [graph.edge_property(e, "date") for e in transfers]
        assert dates == sorted(dates)

    def test_degree_helpers(self):
        graph = running_example_graph()
        assert graph.out_degree().sum() == graph.num_edges
        assert graph.in_degree().sum() == graph.num_edges
        assert graph.average_degree == pytest.approx(graph.num_edges / graph.num_vertices)

    def test_label_selection(self):
        graph = running_example_graph()
        accounts = graph.vertices_with_label("Account")
        customers = graph.vertices_with_label("Customer")
        assert len(accounts) == 5
        assert len(customers) == 3
        wires = graph.edges_with_label("Wire")
        assert all(graph.edge_label_name(int(e)) == "Wire" for e in wires)


class TestPropertyStore:
    def test_set_column_and_vectorized_read(self):
        schema = GraphSchema()
        schema.add_vertex_property("age", PropertyType.INT)
        store = PropertyStore(schema, "vertex")
        store.set_count(3)
        store.set_column("age", [10, None, 30])
        values = store.values_for(np.array([0, 1, 2]), "age")
        assert values[0] == 10 and values[2] == 30
        assert store.value(1, "age") is None

    def test_unknown_kind_raises(self):
        with pytest.raises(SchemaError):
            PropertyStore(GraphSchema(), "thing")

    def test_column_length_mismatch_raises(self):
        schema = GraphSchema()
        schema.add_vertex_property("age", PropertyType.INT)
        store = PropertyStore(schema, "vertex")
        store.set_count(2)
        with pytest.raises(SchemaError):
            store.set_column("age", [1, 2, 3])

    def test_cannot_shrink(self):
        schema = GraphSchema()
        store = PropertyStore(schema, "vertex")
        store.set_count(5)
        with pytest.raises(SchemaError):
            store.set_count(2)

    def test_categorical_round_trip(self):
        schema = GraphSchema()
        schema.add_edge_property(
            "currency", PropertyType.CATEGORICAL, categories=["USD", "EUR"]
        )
        store = PropertyStore(schema, "edge")
        store.set_count(2)
        store.set_value(0, "currency", "EUR")
        store.set_value(1, "currency", None)
        assert store.value(0, "currency") == "EUR"
        assert store.value(1, "currency") is None
        assert store.raw_value(0, "currency") == 1

    def test_nbytes_positive_after_population(self):
        schema = GraphSchema()
        schema.add_vertex_property("age", PropertyType.INT)
        store = PropertyStore(schema, "vertex")
        store.set_count(10)
        store.set_column("age", list(range(10)))
        assert store.nbytes() > 0
