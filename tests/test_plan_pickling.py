"""Pickle round-trips for morsel task specs, worker payloads, and plans.

The process morsel backend works by shipping state across a process
boundary: a :class:`~repro.query.backends.WorkerPayload` (plan + graph, one
pickle per worker) and per-morsel :class:`~repro.query.backends
.MorselTaskSpec` messages.  These tests pin the wire contract without
needing a pool — the worker entry points are invoked in-process on pickled
bytes — plus the generation-pinning guarantee end to end: a plan pinned to
store generation G, serialized after a maintenance flush installs G+1, still
executes against G.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro import Database
from repro.errors import ExecutionError
from repro.graph.generators import LabelledGraphSpec, generate_labelled_graph
from repro.query import QueryGraph, cmp, prop
from repro.query.backends import (
    MorselTaskSpec,
    WorkerPayload,
    _process_worker_init,
    _process_worker_run,
    decode_batches,
    encode_batches,
    reply_checksum,
    run_morsel,
)
from repro.query.executor import Executor
from repro.query.operators import ExecutionStats


@pytest.fixture()
def zipf_db():
    graph = generate_labelled_graph(
        LabelledGraphSpec(
            num_vertices=90,
            num_edges=360,
            num_vertex_labels=2,
            num_edge_labels=2,
            skew=0.8,
            seed=11,
        )
    )
    return Database(graph)


def _triangle():
    query = QueryGraph("tri")
    for name in ("a", "b", "c"):
        query.add_vertex(name)
    query.add_edge("a", "b", name="e0")
    query.add_edge("a", "c", name="e1")
    query.add_edge("b", "c", name="e2")
    return query


def _stats_dict(stats):
    # The compare=False observability fields (per-stage wall times, morsel
    # dispatch counts) legitimately differ between runs; byte-identity is
    # asserted on the work counters.
    return {
        field.name: getattr(stats, field.name)
        for field in dataclasses.fields(stats)
        if field.compare
    }


class TestTaskSpecRoundTrip:
    def test_spec_round_trips(self):
        spec = MorselTaskSpec(plan_id=7, generation=3, start=128, stop=256)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_unpinned_spec_round_trips(self):
        spec = MorselTaskSpec(plan_id=1, generation=None, start=0, stop=10)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestWorkerPayloadRoundTrip:
    def test_rehydrated_worker_reproduces_serial_morsel(self, zipf_db):
        plan = zipf_db.plan(_triangle())
        payload = WorkerPayload(
            plan_id=5,
            generation=plan.pinned_generation,
            plan=plan,
            graph=zipf_db.graph,
            batch_size=64,
        )
        _process_worker_init(pickle.dumps(payload))
        spec = MorselTaskSpec(
            plan_id=5, generation=plan.pinned_generation, start=10, stop=55
        )
        encoded, stats_tuple, checksum = _process_worker_run(spec)
        batches = decode_batches(encoded)

        expected_batches, expected_stats = run_morsel(
            plan, zipf_db.graph, 64, 10, 55
        )
        # Dataclass equality excludes the compare=False observability
        # fields (per-stage wall times differ run to run); the work
        # counters must round-trip exactly.
        assert ExecutionStats(*stats_tuple) == expected_stats
        assert reply_checksum(encoded, stats_tuple) == checksum
        got = [row for batch in batches for row in batch.to_dicts()]
        want = [row for batch in expected_batches for row in batch.to_dicts()]
        assert got == want

    def test_generation_mismatch_is_rejected(self, zipf_db):
        plan = zipf_db.plan(_triangle())
        payload = WorkerPayload(
            plan_id=5,
            generation=plan.pinned_generation,
            plan=plan,
            graph=zipf_db.graph,
            batch_size=64,
        )
        _process_worker_init(pickle.dumps(payload))
        stale = MorselTaskSpec(
            plan_id=5,
            generation=(plan.pinned_generation or 0) + 1,
            start=0,
            stop=10,
        )
        with pytest.raises(ExecutionError, match="generation"):
            _process_worker_run(stale)
        wrong_plan = MorselTaskSpec(
            plan_id=6, generation=plan.pinned_generation, start=0, stop=10
        )
        with pytest.raises(ExecutionError, match="does not match"):
            _process_worker_run(wrong_plan)

    def test_encode_decode_batches_round_trip(self, zipf_db):
        plan = zipf_db.plan(_triangle())
        batches, _ = run_morsel(plan, zipf_db.graph, 32, 0, 40)
        clone = decode_batches(pickle.loads(pickle.dumps(encode_batches(batches))))
        assert [b.to_dicts() for b in clone] == [b.to_dicts() for b in batches]


class TestGenerationPinning:
    """A plan pinned to generation G survives a flush installing G+1."""

    def _flush_some_edges(self, db):
        maintainer = db.maintainer(merge_threshold=10**9)
        rng_edges = [(1, 2), (3, 4), (5, 6), (7, 8)]
        for src, dst in rng_edges:
            maintainer.insert_edge(src, dst, "EL0")
        maintainer.flush()

    def test_pickled_plan_still_executes_against_generation_g(self, zipf_db):
        plan = zipf_db.plan(_triangle())
        pinned = plan.pinned_generation
        before = Executor(plan.store_snapshot.graph).run(plan, materialize=True)

        self._flush_some_edges(zipf_db)
        assert zipf_db.store.generation == pinned + 1

        # Serialize *after* the flush — the worker-side copy must still be
        # the G generation, plan and graph consistently.
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.pinned_generation == pinned
        replay = Executor(clone.store_snapshot.graph).run(clone, materialize=True)
        assert replay.matches == before.matches
        assert _stats_dict(replay.stats) == _stats_dict(before.stats)

    def test_process_backend_runs_prebuilt_plan_against_its_generation(
        self, zipf_db
    ):
        plan = zipf_db.plan(_triangle())
        before = zipf_db.run(plan, materialize=True, parallelism=1)

        self._flush_some_edges(zipf_db)

        # The flushed store has more edges, so a fresh plan sees more
        # matches — while the pre-built plan, even executed on pool workers
        # rehydrated after the flush, reproduces the pinned generation.
        replay = zipf_db.run(
            plan, materialize=True, parallelism=2, backend="process"
        )
        assert replay.matches == before.matches
        assert _stats_dict(replay.stats) == _stats_dict(before.stats)

        fresh = zipf_db.run(_triangle(), materialize=True, parallelism=1)
        assert fresh.count > before.count

    def test_worker_payload_pickle_shares_generation_object_graph(self, zipf_db):
        plan = zipf_db.plan(_triangle())
        payload = WorkerPayload(
            plan_id=1,
            generation=plan.pinned_generation,
            plan=plan,
            graph=plan.store_snapshot.graph,
            batch_size=32,
        )
        clone = pickle.loads(pickle.dumps(payload))
        # Inside one payload pickle, the plan's snapshot graph and the
        # shipped graph deserialize to the *same* object, so the worker's
        # state is internally consistent (no duplicated generations).
        assert clone.plan.store_snapshot.graph is clone.graph
        leg = clone.plan.operators[1].legs[0]
        assert leg.access_path.index is clone.plan.store_snapshot.primary.for_direction(
            leg.access_path.direction
        )


class TestStoreGenerationCounter:
    def test_every_write_bumps_generation(self, zipf_db):
        store = zipf_db.store
        start = store.generation
        snapshot = store.snapshot()
        self_export = store.export_snapshot()
        assert self_export.generation == start
        zipf_db.reconfigure_primary(zipf_db.primary_index.config)
        assert store.generation == start + 1
        # Pinned snapshots never follow the swap.
        assert snapshot.generation == start
