"""End-to-end tests for the admission-controlled query server.

Covers the server's three contracts:

* **Determinism** — an admitted query's result is byte-identical to a
  direct ``Database.run()`` of the same plan, on every backend and under
  concurrent load.
* **Bounded overload** — a full admission queue behaves per policy
  (``reject`` / ``shed-oldest`` / ``block``), expired queued queries are
  shed without occupying an execution slot, and the counters always
  reconcile: ``submitted == admitted + rejected + shed`` once drained.
* **Pool lifecycle** — pools persist across queries, crashed pools are
  recycled, repeated failures trip the circuit breaker into serial
  degradation, and ``drain()`` leaves no worker processes behind.

Slow queries are *held* deterministically with PR 7's injected delay
faults on the thread backend (the delay sleeps in a pool worker thread, so
the slot thread's polled wait stays responsive to cancellation) and
released with ``CancellationToken``s — no timing-tuned sleeps on the
critical path.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

import pytest

from repro import Database
from repro.errors import (
    ExecutionError,
    QueryCancelledError,
    QueryTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.query.backends import ProcessBackend, fork_available
from repro.query.faults import FAULTS_ENV_VAR
from repro.query.pattern import QueryGraph
from repro.query.runtime import CancellationToken
from repro.server import (
    CircuitBreaker,
    DatabaseServer,
    PersistentThreadBackend,
    PoolSupervisor,
    ServerConfig,
)
from repro.server import pools as pools_module


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _owns_query(name: str = "owns") -> QueryGraph:
    q = QueryGraph(name)
    q.add_vertex("c1", label="Customer")
    q.add_vertex("a1", label="Account")
    q.add_edge("c1", "a1", label="Owns", name="r1")
    return q


def _two_hop_query(name: str = "two-hop") -> QueryGraph:
    q = QueryGraph(name)
    q.add_vertex("c1", label="Customer")
    q.add_vertex("a1", label="Account")
    q.add_vertex("a2", label="Account")
    q.add_edge("c1", "a1", label="Owns", name="r1")
    q.add_edge("a1", "a2", label="Wire", name="r2")
    return q


def _assert_invariants(server: DatabaseServer) -> None:
    stats = server.stats.snapshot()
    assert stats["submitted"] == (
        stats["admitted"] + stats["rejected"] + stats["shed"]
    ), stats
    assert stats["admitted"] == stats["completed"] + stats["failed"], stats


def _wait_until(predicate, timeout: float = 5.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.005)


@pytest.fixture()
def held_server(example_db, monkeypatch):
    """A 1-slot server whose queries sleep in a worker until cancelled.

    The injected delay (morsel 0, every attempt) runs inside a *thread
    pool worker*, so the execution slot's polled wait sees cancellation
    within one poll interval — tests hold the slot for exactly as long as
    they need and then release it via the query's token.  The delay is
    finite so an abandoned worker thread cannot outlive the test run by
    much even if a release is missed.
    """
    monkeypatch.setenv(FAULTS_ENV_VAR, "delay@0:2.5!")

    def make(**overrides):
        config = dict(
            max_concurrent=1,
            max_queue_depth=1,
            policy="reject",
            parallelism=2,
            backend="thread",
        )
        config.update(overrides)
        return DatabaseServer(example_db, ServerConfig(**config))

    return make


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["serial", "thread"])
def test_server_result_identical_to_direct_run(example_db, backend):
    query = _owns_query()
    direct = example_db.run(query, materialize=True)
    with example_db.server(
        ServerConfig(parallelism=2, backend=backend)
    ) as server:
        result = server.run(query, materialize=True)
        assert result.matches == direct.matches
        assert result.count == direct.count
        assert server.count(query) == direct.count
    _assert_invariants(server)


@pytest.mark.skipif(not fork_available(), reason="needs cheap fork pools")
def test_server_process_backend_identical_and_pool_reused(example_db):
    # A pre-built plan keeps one payload identity across queries, so the
    # workers' payload caches hit from the second run on (a per-query-graph
    # plan cache is the roadmap's follow-up; re-planning ships a fresh
    # payload each time but reuses the same pool either way).
    plan = example_db.plan(_owns_query())
    hop = _two_hop_query()
    direct = example_db.run(plan, materialize=True)
    direct_hop = example_db.count(hop)
    with example_db.server(
        ServerConfig(parallelism=2, backend="process")
    ) as server:
        for _ in range(3):
            result = server.run(plan, materialize=True)
            assert result.matches == direct.matches
        assert server.count(hop) == direct_hop
        # One persistent pool served every query; payloads were re-shipped
        # once per distinct plan and reused afterwards.
        assert server.supervisor.pools_created == 1
        pool = server.supervisor._free[("process", 2)][0]
        assert pool.queries_served == 4
        assert pool.payload_reuses >= 2
    assert multiprocessing.active_children() == []
    _assert_invariants(server)


def test_concurrent_clients_all_get_exact_results(example_db):
    queries = [_owns_query(), _two_hop_query()]
    expected = [example_db.run(q, materialize=True).matches for q in queries]
    errors = []

    with example_db.server(
        ServerConfig(
            max_concurrent=2,
            max_queue_depth=64,
            policy="block",
            parallelism=2,
            backend="thread",
        )
    ) as server:

        def client(worker_id: int) -> None:
            try:
                for i in range(5):
                    pick = (worker_id + i) % len(queries)
                    result = server.run(queries[pick], materialize=True)
                    if result.matches != expected[pick]:
                        errors.append(
                            f"client {worker_id} iteration {i}: mismatch"
                        )
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(f"client {worker_id}: {exc!r}")

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
    assert errors == []
    stats = server.stats.snapshot()
    assert stats["completed"] == 40
    _assert_invariants(server)


# ----------------------------------------------------------------------
# admission policies
# ----------------------------------------------------------------------
def test_reject_policy_full_queue_raises_typed_error(held_server):
    server = held_server(policy="reject")
    query = _owns_query()
    hold = CancellationToken()
    try:
        t1 = server.submit(query, cancel=hold)
        _wait_until(lambda: server.running() == 1, message="slot occupied")
        t2 = server.submit(query, cancel=hold)
        with pytest.raises(ServerOverloadedError) as excinfo:
            server.submit(query)
        assert excinfo.value.policy == "reject"
        assert excinfo.value.queue_depth == 1
        assert excinfo.value.max_queue_depth == 1
    finally:
        hold.cancel()
        server.drain()
    with pytest.raises(QueryCancelledError):
        t1.result()
    with pytest.raises((QueryCancelledError, Exception)):
        t2.result()
    stats = server.stats.snapshot()
    assert stats["rejected"] == 1
    assert stats["submitted"] == 3
    _assert_invariants(server)


def test_shed_oldest_policy_evicts_oldest_waiter(held_server):
    server = held_server(policy="shed-oldest")
    query = _owns_query()
    hold = CancellationToken()
    try:
        server.submit(query, cancel=hold)
        _wait_until(lambda: server.running() == 1, message="slot occupied")
        oldest = server.submit(query, cancel=hold)
        newest = server.submit(query, cancel=hold)
        # The oldest waiter was evicted to make room for the newest.
        with pytest.raises(ServerOverloadedError) as excinfo:
            oldest.result()
        assert excinfo.value.policy == "shed-oldest"
        assert not newest.done()
    finally:
        hold.cancel()
        server.drain()
    stats = server.stats.snapshot()
    assert stats["shed"] >= 1
    assert stats["rejected"] == 0
    _assert_invariants(server)


def test_block_policy_waits_for_room(held_server):
    server = held_server(policy="block")
    query = _owns_query()
    hold = CancellationToken()
    tickets = []
    try:
        tickets.append(server.submit(query, cancel=hold))
        _wait_until(lambda: server.running() == 1, message="slot occupied")
        tickets.append(server.submit(query, cancel=hold))

        unblocked = threading.Event()

        def blocked_submit():
            tickets.append(server.submit(query, cancel=hold))
            unblocked.set()

        submitter = threading.Thread(target=blocked_submit)
        submitter.start()
        # The queue is full: the submitter must still be blocked.
        assert not unblocked.wait(0.2)
        # Release the running query; the queued one is admitted, making
        # room, and the blocked submit completes.
        hold.cancel()
        assert unblocked.wait(10), "block-policy submit never unblocked"
        submitter.join(timeout=5)
    finally:
        hold.cancel()
        server.drain()
    assert len(tickets) == 3
    _assert_invariants(server)


def test_block_policy_respects_query_deadline(held_server):
    server = held_server(policy="block")
    query = _owns_query()
    hold = CancellationToken()
    try:
        server.submit(query, cancel=hold)
        _wait_until(lambda: server.running() == 1, message="slot occupied")
        server.submit(query, cancel=hold)
        started = time.monotonic()
        with pytest.raises(QueryTimeoutError):
            server.submit(query, timeout=0.3)
        # It gave up at its own deadline, not at some unrelated bound.
        assert time.monotonic() - started < 2.0
        assert server.stats.rejected == 1
    finally:
        hold.cancel()
        server.drain()
    _assert_invariants(server)


# ----------------------------------------------------------------------
# queue-deadline shedding and cancellation
# ----------------------------------------------------------------------
def test_queued_query_sheds_at_its_deadline_without_a_slot(held_server):
    server = held_server(max_queue_depth=4)
    query = _owns_query()
    hold = CancellationToken()
    try:
        server.submit(query, cancel=hold)
        _wait_until(lambda: server.running() == 1, message="slot occupied")
        queued = server.submit(query, timeout=0.3)
        with pytest.raises(QueryTimeoutError) as excinfo:
            queued.result()
        assert "admission queue" in str(excinfo.value)
        # It never ran: the slot was still held the whole time.
        assert server.stats.admitted == 1
        assert server.stats.shed == 1
    finally:
        hold.cancel()
        server.drain()
    _assert_invariants(server)


def test_expired_ticket_reached_by_worker_is_shed_not_run(held_server):
    server = held_server(max_queue_depth=4)
    query = _owns_query()
    hold = CancellationToken()
    try:
        first = server.submit(query, cancel=hold)
        _wait_until(lambda: server.running() == 1, message="slot occupied")
        # Deadline far shorter than the hold; nobody waits on the ticket,
        # so the *worker* must notice the corpse at dequeue time.
        queued = server.submit(query, timeout=0.05)
        time.sleep(0.2)
        hold.cancel()
        with pytest.raises(QueryCancelledError):
            first.result()
        with pytest.raises(QueryTimeoutError):
            queued.result()
        assert server.stats.admitted == 1
    finally:
        hold.cancel()
        server.drain()
    _assert_invariants(server)


def test_cancel_while_queued(held_server):
    server = held_server(max_queue_depth=4)
    query = _owns_query()
    hold = CancellationToken()
    try:
        server.submit(query, cancel=hold)
        _wait_until(lambda: server.running() == 1, message="slot occupied")
        queued = server.submit(query)
        assert queued.cancel() is True
        with pytest.raises(QueryCancelledError):
            queued.result()
        assert server.stats.shed == 1
        assert server.stats.admitted == 1
    finally:
        hold.cancel()
        server.drain()
    _assert_invariants(server)


# ----------------------------------------------------------------------
# drain / lifecycle
# ----------------------------------------------------------------------
def test_drain_finishes_running_cancels_queued(held_server):
    server = held_server(max_queue_depth=4)
    query = _owns_query()
    running = server.submit(query)
    _wait_until(lambda: server.running() == 1, message="slot occupied")
    queued = server.submit(query)
    server.drain()
    # The queued query was cancelled by the drain...
    with pytest.raises(QueryCancelledError) as excinfo:
        queued.result()
    assert "drain" in str(excinfo.value)
    # ...and the admitted one ran to a terminal outcome.  Its token was
    # NOT cancelled by the drain, but its injected 2.5s delay makes it a
    # completed query once the workers joined.
    assert running.done()
    assert running.outcome in ("completed", "failed")
    with pytest.raises(ServerClosedError):
        server.submit(query)
    assert server.state == "closed"
    assert multiprocessing.active_children() == []
    _assert_invariants(server)


def test_drain_is_idempotent_and_context_manager_drains(example_db):
    server = example_db.server()
    server.drain()
    server.drain()
    assert server.state == "closed"
    with example_db.server() as ctx_server:
        assert ctx_server.run(_owns_query()).count == 5
    assert ctx_server.state == "closed"


# ----------------------------------------------------------------------
# pool supervisor / circuit breaker
# ----------------------------------------------------------------------
class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def test_circuit_breaker_state_machine():
    clock = _FakeClock()
    breaker = CircuitBreaker(threshold=2, cooldown_seconds=5.0, clock=clock)
    assert breaker.state == "closed"
    breaker.record_failure()
    assert breaker.allows()
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allows()
    clock.now = 5.1
    assert breaker.state == "half-open"
    assert breaker.allows()
    # A failed trial re-opens with a fresh cooldown.
    breaker.record_failure()
    assert breaker.state == "open"
    clock.now = 10.3
    assert breaker.allows()
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.trips == 1


def test_supervisor_degrades_to_serial_while_breaker_open(monkeypatch):
    clock = _FakeClock()
    supervisor = PoolSupervisor(
        breaker_threshold=2, breaker_cooldown=5.0, clock=clock
    )

    class ExplodingBackend:
        def __init__(self, num_workers):
            pass

        def start(self):
            raise ExecutionError("injected pool startup failure")

    monkeypatch.setitem(
        pools_module.PERSISTENT_BACKENDS, "thread", ExplodingBackend
    )
    for _ in range(2):
        with pytest.raises(ExecutionError):
            supervisor.lease("thread", 2)
    # Breaker open: leases degrade to serial instead of touching pools.
    lease = supervisor.lease("thread", 2)
    assert lease.degraded
    lease.backend.open  # it is a usable backend
    lease.release("ok")
    assert supervisor.degraded_leases == 1
    # Cooldown elapses; the trial lease goes back to real pools.
    monkeypatch.setitem(
        pools_module.PERSISTENT_BACKENDS, "thread", PersistentThreadBackend
    )
    clock.now = 5.1
    trial = supervisor.lease("thread", 2)
    assert not trial.degraded
    trial.release("ok")
    assert supervisor.breaker("thread", 2).state == "closed"
    supervisor.close()


def test_failed_lease_recycles_pool():
    supervisor = PoolSupervisor()
    lease = supervisor.lease("thread", 2)
    backend = lease.backend
    lease.release("failed")
    assert supervisor.pools_recycled == 1
    assert backend._pool is None  # shut down, not returned to the free list
    replacement = supervisor.lease("thread", 2)
    assert replacement.backend is not backend
    replacement.release("ok")
    supervisor.close()


@pytest.mark.skipif(not fork_available(), reason="needs cheap fork pools")
def test_server_survives_worker_kills_and_trips_breaker(
    example_db, monkeypatch
):
    # Every query's morsel 0 kills its process worker on every attempt:
    # each query still succeeds (dispatcher retries + serial fallback),
    # but the pool is observably wounded, so the supervisor recycles it
    # and the breaker opens after `breaker_threshold` sick queries —
    # after which leases degrade to serial and stop paying recovery tax.
    monkeypatch.setenv(FAULTS_ENV_VAR, "kill@0!")
    query = _owns_query()
    direct = example_db.run(query, materialize=True)
    with example_db.server(
        ServerConfig(
            parallelism=2,
            backend="process",
            breaker_threshold=2,
            breaker_cooldown=60.0,
        )
    ) as server:
        for _ in range(3):
            result = server.run(query, materialize=True)
            assert result.matches == direct.matches
        assert server.supervisor.pools_recycled >= 2
        assert server.supervisor.degraded_leases >= 1
        assert server.supervisor.breaker("process", 2).state == "open"
    assert multiprocessing.active_children() == []
    _assert_invariants(server)


# ----------------------------------------------------------------------
# satellite: ProcessBackend.close() idempotent under concurrent callers
# ----------------------------------------------------------------------
@pytest.mark.skipif(not fork_available(), reason="needs cheap fork pools")
def test_process_backend_close_hammer():
    backend = ProcessBackend()
    backend._pool = multiprocessing.get_context("fork").Pool(processes=2)
    barrier = threading.Barrier(8)
    errors = []

    def hammer():
        barrier.wait()
        try:
            backend.close()
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert errors == []
    assert backend._pool is None
    # Sequential double-close stays a no-op too.
    backend.close()
    backend.close()
    assert multiprocessing.active_children() == []


def test_persistent_thread_backend_shutdown_hammer():
    backend = PersistentThreadBackend(2).start()
    barrier = threading.Barrier(8)
    errors = []

    def hammer():
        barrier.wait()
        try:
            backend.shutdown()
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert errors == []
    assert backend._pool is None


# ----------------------------------------------------------------------
# configuration and reporting
# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ExecutionError):
        ServerConfig(max_concurrent=0)
    with pytest.raises(ExecutionError):
        ServerConfig(max_queue_depth=0)
    with pytest.raises(ExecutionError):
        ServerConfig(policy="drop-newest")
    with pytest.raises(ExecutionError):
        ServerConfig(default_timeout=0)


def test_describe_mentions_server(example_db):
    text = example_db.describe()
    assert "Server (admission-controlled service mode)" in text
    assert "shed-oldest" in text
    with example_db.server() as server:
        server.run(_owns_query())
        live = server.describe()
    assert "admission" in live
    assert "Pool supervisor" in live


# ----------------------------------------------------------------------
# PR 10: collect/exists modes, limit validation, plan-cache counters
# ----------------------------------------------------------------------
class TestSubmitModesAndPlanCache:
    def test_collect_mode_matches_direct(self, example_db):
        q = _owns_query()
        direct = example_db.collect(q)
        with example_db.server() as server:
            ticket = server.submit(_owns_query(), mode="collect")
            assert ticket.result() == direct
            assert server.collect(_owns_query()) == direct

    def test_collect_mode_honours_limit(self, example_db):
        q = _owns_query()
        direct = example_db.collect(q, limit=2)
        with example_db.server() as server:
            assert server.collect(_owns_query(), limit=2) == direct
            assert len(server.collect(_owns_query(), limit=2)) == 2
            assert server.collect(_owns_query(), limit=0) == []

    def test_exists_mode_matches_direct(self, example_db):
        hit = _owns_query()
        miss = QueryGraph("no-such-shape")
        miss.add_vertex("a1", label="Account")
        miss.add_vertex("c1", label="Customer")
        miss.add_edge("a1", "c1", label="Owns", name="r1")  # reversed: none
        with example_db.server() as server:
            assert server.exists(hit) is example_db.exists(_owns_query())
            assert server.submit(miss, mode="exists").result() is False

    def test_unknown_mode_and_misplaced_limit_rejected(self, example_db):
        with example_db.server() as server:
            with pytest.raises(ExecutionError):
                server.submit(_owns_query(), mode="explain")
            with pytest.raises(ExecutionError):
                server.submit(_owns_query(), mode="run", limit=3)
            with pytest.raises(ExecutionError):
                server.submit(_owns_query(), mode="count", limit=3)
            # rejected synchronously: nothing was admitted or counted
            assert server.stats.snapshot()["submitted"] == 0

    def test_negative_limit_rejected_everywhere(self, example_db):
        from repro.query.pipeline import LimitSink, validate_limit

        q = _owns_query()
        with pytest.raises(ExecutionError):
            example_db.collect(q, limit=-1)
        with pytest.raises(ExecutionError):
            validate_limit(-3)
        with pytest.raises(ExecutionError):
            LimitSink(limit=-2)
        with example_db.server() as server:
            with pytest.raises(ExecutionError):
                server.collect(q, limit=-1)

    def test_limit_zero_is_a_legal_empty_result(self, example_db):
        """The old behaviour silently returned [] for *any* limit <= 0;
        limit=0 stays legal (and empty), limit=None stays unlimited."""
        q = _owns_query()
        assert example_db.collect(q, limit=0) == []
        assert example_db.collect(q, limit=None) == example_db.collect(q)

    def test_plan_cache_counters_reconcile(self, example_db):
        prebuilt = example_db.plan(_two_hop_query())
        with example_db.server() as server:
            server.run(_owns_query())          # miss (first sighting)
            server.count(_owns_query())        # hit
            server.collect(_owns_query())      # hit
            server.exists(_owns_query())       # hit
            server.count(_two_hop_query())     # hit (db.plan above cached it)
            server.run(prebuilt)               # QueryPlan: bypasses the cache
            stats = server.stats.snapshot()
        _assert_invariants(server)
        graph_submissions = 5
        assert stats["submitted"] == 6
        assert (
            stats["plan_cache_hits"] + stats["plan_cache_misses"]
            == graph_submissions
        )
        assert stats["plan_cache_misses"] == 1
        assert stats["plan_cache_hits"] == 4

    def test_repeated_submission_plans_once_per_generation(self, example_db):
        """The acceptance bar: N submissions of one pattern = 1 planning."""
        with example_db.server() as server:
            for _ in range(10):
                server.count(_owns_query())
            stats = server.stats.snapshot()
        assert stats["plan_cache_misses"] == 1
        assert stats["plan_cache_hits"] == 9
        assert example_db.plan_cache.stats.misses == 1

    def test_cached_submission_identical_to_direct(self, example_db):
        """Server cache hits return byte-identical results to a direct,
        fresh-planned Database.run."""
        fresh_db = Database(example_db.graph, plan_cache_capacity=0)
        q = _two_hop_query()
        with example_db.server() as server:
            server.run(q)  # warm
            served = server.run(_two_hop_query(), materialize=True)
        direct = fresh_db.run(_two_hop_query(), materialize=True)
        assert served.matches == direct.matches
        assert served.count == direct.count
