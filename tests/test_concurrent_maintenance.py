"""Concurrent queries racing index-maintenance flushes.

The snapshot/flush contract (documented on ``IndexStore`` and
``repro.index.maintenance``): a flush builds the complete replacement state —
graph, primary, statistics, every secondary index — off to the side and
installs it with one atomic ``install_state`` swap, and every
``Database.run`` captures a store snapshot at plan time.  A query racing a
flush must therefore observe either the entirely pre-flush or the entirely
post-flush store — never a partially merged index, and never a graph of one
generation paired with indexes of another.

The probabilistic test hammers a database from reader threads while the main
thread runs repeated bulk-insert + flush rounds; every observed count must be
one of the per-generation counts computed by an identical serial dry run.
The deterministic tests pin a snapshot across a flush and check both sides
of the swap directly.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import Database, Direction, IndexConfig
from repro.graph.generators import FinancialGraphSpec, generate_financial_graph
from repro.index.views import OneHopView
from repro.query import Predicate, QueryGraph, cmp, prop
from repro.storage.sort_keys import SortKey

NUM_VERTICES = 100
NUM_EDGES = 400
ROUNDS = 6
BATCH = 150


def _build_db() -> Database:
    graph = generate_financial_graph(
        FinancialGraphSpec(
            num_vertices=NUM_VERTICES,
            num_edges=NUM_EDGES,
            num_cities=5,
            skew=0.3,
            seed=29,
        )
    )
    db = Database(graph)
    db.create_vertex_index(
        OneHopView(
            "BigWire", predicate=Predicate.of(cmp(prop("eadj", "amt"), ">", 500))
        ),
        directions=(Direction.FORWARD,),
        config=IndexConfig(
            partition_keys=(),
            sort_keys=(SortKey.edge_property("date"), SortKey.neighbour_id()),
        ),
        name="BigWire",
    )
    return db


def _delta_batches():
    rng = np.random.default_rng(83)
    return [
        (
            rng.integers(0, NUM_VERTICES, size=BATCH),
            rng.integers(0, NUM_VERTICES, size=BATCH),
            dict(
                amt=rng.integers(1, 1001, size=BATCH),
                date=rng.integers(0, 1825, size=BATCH),
                currency=rng.integers(0, 4, size=BATCH),
            ),
        )
        for _ in range(ROUNDS)
    ]


def _queries():
    edge_count = QueryGraph("edges")
    edge_count.add_vertex("a")
    edge_count.add_vertex("b")
    edge_count.add_edge("a", "b", name="e")

    big = QueryGraph("big")
    big.add_vertex("a")
    big.add_vertex("b")
    big.add_edge("a", "b", name="e")
    big.add_predicate(cmp(prop("e", "amt"), ">", 500))
    return edge_count, big


def test_queries_never_observe_partially_merged_index():
    batches = _delta_batches()
    edge_count, big = _queries()

    # Serial dry run: the only counts any reader may legitimately observe.
    dry = _build_db()
    dry_maintainer = dry.maintainer(merge_threshold=10**12)
    valid_edge_counts = {dry.count(edge_count)}
    valid_big_counts = {dry.count(big)}
    for src, dst, props in batches:
        dry_maintainer.insert_edges(src, dst, "Wire", properties=props)
        dry_maintainer.flush()
        valid_edge_counts.add(dry.count(edge_count))
        valid_big_counts.add(dry.count(big))

    db = _build_db()
    maintainer = db.maintainer(merge_threshold=10**12)
    stop = threading.Event()
    observations = []
    errors = []

    def reader(parallelism: int) -> None:
        try:
            while not stop.is_set():
                observations.append(
                    ("edges", db.count(edge_count, parallelism=parallelism))
                )
                observations.append(("big", db.count(big, parallelism=parallelism)))
        except Exception as exc:  # noqa: BLE001 - surface to the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=reader, args=(parallelism,))
        for parallelism in (1, 1, 2)
    ]
    for thread in threads:
        thread.start()
    try:
        # Let the readers spin up so flushes race in-flight queries, and
        # pause between rounds so intermediate generations are observed.
        time.sleep(0.05)
        for src, dst, props in batches:
            maintainer.insert_edges(src, dst, "Wire", properties=props)
            maintainer.flush()
            time.sleep(0.02)
    finally:
        stop.set()
        for thread in threads:
            thread.join()

    assert not errors, f"reader raised: {errors[0]!r}"
    assert observations, "readers never ran"
    for name, observed in observations:
        valid = valid_edge_counts if name == "edges" else valid_big_counts
        assert observed in valid, (
            f"query {name!r} observed count {observed}, which matches no "
            f"complete store generation {sorted(valid)} — a partially "
            "merged index leaked into a reader"
        )
    # The final generation is what the last flush produced.
    assert db.count(edge_count) == NUM_EDGES + ROUNDS * BATCH


def test_snapshot_pins_the_preflush_generation():
    db = _build_db()
    edge_count, _ = _queries()
    snapshot = db.store.snapshot()
    pre_graph = snapshot.graph
    pre_index_names = snapshot.secondary_index_names()

    maintainer = db.maintainer(merge_threshold=10**12)
    src, dst, props = _delta_batches()[0]
    maintainer.insert_edges(src, dst, "Wire", properties=props)
    maintainer.flush()

    # The pinned snapshot still describes the pre-flush generation...
    assert snapshot.graph is pre_graph
    assert snapshot.graph.num_edges == NUM_EDGES
    assert snapshot.secondary_index_names() == pre_index_names
    # ... while the live store (and fresh snapshots) see the merged one.
    assert db.graph.num_edges == NUM_EDGES + BATCH
    assert db.store.snapshot().graph is db.graph
    assert db.count(edge_count) == NUM_EDGES + BATCH


def test_prebuilt_plan_executes_against_its_pinned_generation():
    """A plan's legs reference the indexes it was planned against; running it
    after a flush must use that generation's graph (edge IDs are remapped by
    the merge), not mix old index references with the new graph."""
    db = _build_db()
    edge_count, _ = _queries()
    plan = db.plan(edge_count)
    pinned_graph = plan.store_snapshot.graph

    maintainer = db.maintainer(merge_threshold=10**12)
    src, dst, props = _delta_batches()[0]
    maintainer.insert_edges(src, dst, "Wire", properties=props)
    maintainer.flush()

    # The pre-built plan still answers over its own (pre-flush) generation...
    assert plan.store_snapshot.graph is pinned_graph
    assert db.run(plan).count == NUM_EDGES
    # ... while re-planning the same query sees the merged generation.
    assert db.count(edge_count) == NUM_EDGES + BATCH


def test_flush_races_pinned_process_query_under_worker_death(monkeypatch):
    """The hardest combined race: a process-backend query pinned to the
    pre-flush generation loses a worker to an injected kill *while* the main
    thread inserts and flushes a new generation.  Recovery must re-execute
    the lost morsel against the *pinned* generation (workers rehydrated from
    the pinned payload; the serial fallback reads the plan's own snapshot
    graph), so the query still answers exactly the pre-flush count even
    though the store has moved on underneath it."""
    from repro.query.backends import fork_available

    if not fork_available():
        pytest.skip("process-backend chaos needs cheap fork pools")

    monkeypatch.setenv("REPRO_FAULTS", "kill@0")
    monkeypatch.setenv("REPRO_MORSEL_TIMEOUT", "15")

    db = _build_db()
    edge_count, _ = _queries()
    plan = db.plan(edge_count)

    results = []
    errors = []

    def query_worker() -> None:
        try:
            results.append(db.run(plan, parallelism=2, backend="process"))
        except Exception as exc:  # noqa: BLE001 - surface to the main thread
            errors.append(exc)

    thread = threading.Thread(target=query_worker)
    thread.start()
    try:
        # Race the flush against the in-flight crashing query.
        maintainer = db.maintainer(merge_threshold=10**12)
        src, dst, props = _delta_batches()[0]
        maintainer.insert_edges(src, dst, "Wire", properties=props)
        maintainer.flush()
    finally:
        thread.join()

    assert not errors, f"query thread raised: {errors[0]!r}"
    result = results[0]
    # Pinned generation: the pre-flush edge count, not the merged one.
    assert result.count == NUM_EDGES
    # The injected kill really happened and was really recovered.
    assert result.stats.retries >= 1
    assert result.stats.morsels_recovered >= 1
    # The store itself has moved on.
    assert db.graph.num_edges == NUM_EDGES + BATCH


def test_flush_swap_is_one_complete_generation():
    """Every generation's indexes cover exactly its graph's edge set."""
    db = _build_db()
    maintainer = db.maintainer(merge_threshold=10**12)
    src, dst, props = _delta_batches()[0]
    maintainer.insert_edges(src, dst, "Wire", properties=props)
    maintainer.flush()
    state = db.store.state
    assert state.primary.graph is state.graph
    assert len(state.primary.forward.id_lists.edge_ids) == state.graph.num_edges
    for index in state.vertex_indexes.values():
        assert index.graph is state.graph
