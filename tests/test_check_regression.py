"""Unit tests for the perf-regression gate's comparison logic.

The gate itself (``benchmarks/check_regression.py``) normally runs the full
throughput benchmark; here pre-measured results are injected so the
floor-comparison semantics — inclusive boundaries, float-robustness,
``requires_cpus`` skips, and CI-advisory downgrades — are testable in
milliseconds.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

_BENCHMARKS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)
if _BENCHMARKS_DIR not in sys.path:
    sys.path.insert(0, _BENCHMARKS_DIR)

from check_regression import meets_floor, run_check  # noqa: E402


# ----------------------------------------------------------------------
# meets_floor: the inclusive boundary comparison
# ----------------------------------------------------------------------
class TestMeetsFloor:
    def test_above_floor_passes(self):
        assert meets_floor(5.0, 4.0)

    def test_exactly_on_floor_passes(self):
        # A scenario whose measured ratio equals its floor must pass: the
        # gate is inclusive, not strict.
        assert meets_floor(4.0, 4.0)

    def test_float_representation_of_the_floor_passes(self):
        # The floor is computed as min_speedup * (1 - tolerance); a measured
        # ratio equal to the *mathematical* floor can differ from the float
        # product by one ulp.  5.0 * (1 - 0.2) != 4.0 exactly in binary.
        floor = 5.0 * (1.0 - 0.2)
        assert meets_floor(4.0, floor)
        assert meets_floor(floor, 4.0)

    def test_one_ulp_below_passes(self):
        import math

        floor = 4.0
        assert meets_floor(math.nextafter(floor, 0.0), floor)

    def test_clearly_below_fails(self):
        assert not meets_floor(3.9, 4.0)
        assert not meets_floor(0.0, 4.0)


# ----------------------------------------------------------------------
# run_check with injected results
# ----------------------------------------------------------------------
def _baseline(tmp_path, scenarios, tolerance=0.2):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"tolerance": tolerance, "scenarios": scenarios}))
    return str(path)


def _results(**speedups):
    return {
        "scenarios": {
            name: dict(speedup=value) if isinstance(value, float) else dict(value)
            for name, value in speedups.items()
        }
    }


class TestRunCheckGate:
    def test_boundary_scenario_passes(self, tmp_path):
        # measured == min_speedup * (1 - tolerance), the exact boundary.
        baseline = _baseline(tmp_path, {"s": {"min_speedup": 5.0}})
        report = run_check(baseline, results=_results(s=5.0 * 0.8), env={})
        assert report["ok"], report["failures"]

    def test_below_floor_fails(self, tmp_path):
        baseline = _baseline(tmp_path, {"s": {"min_speedup": 5.0}})
        report = run_check(baseline, results=_results(s=3.0), env={})
        assert not report["ok"]
        assert "below floor" in report["failures"][0]

    def test_missing_scenario_fails(self, tmp_path):
        baseline = _baseline(tmp_path, {"s": {"min_speedup": 5.0}})
        report = run_check(baseline, results={"scenarios": {}}, env={})
        assert not report["ok"]

    def test_ungated_extra_scenario_fails(self, tmp_path):
        baseline = _baseline(tmp_path, {})
        report = run_check(baseline, results=_results(extra=9.0), env={})
        assert not report["ok"]
        assert "no baseline floor" in report["failures"][0]

    def test_requires_cpus_skips_on_small_machines(self, tmp_path):
        baseline = _baseline(
            tmp_path, {"par": {"min_speedup": 2.0, "requires_cpus": 4}}
        )
        report = run_check(
            baseline,
            results=_results(par={"speedup": 0.9, "available_cpus": 1}),
            env={},
        )
        assert report["ok"], report["failures"]
        assert report["skipped"] and "usable CPUs" in report["skipped"][0]

    def test_requires_cpus_enforced_when_cores_present(self, tmp_path):
        baseline = _baseline(
            tmp_path, {"par": {"min_speedup": 2.0, "requires_cpus": 4}}
        )
        report = run_check(
            baseline,
            results=_results(par={"speedup": 0.9, "available_cpus": 8}),
            env={},
        )
        assert not report["ok"]

    def test_requires_fork_skips_on_spawn_only_platforms(self, tmp_path):
        baseline = _baseline(
            tmp_path,
            {"proc": {"min_speedup": 2.0, "requires_cpus": 4, "requires_fork": True}},
        )
        report = run_check(
            baseline,
            results=_results(
                proc={"speedup": 0.0, "available_cpus": 8, "start_method": "spawn"}
            ),
            env={},
        )
        assert report["ok"], report["failures"]
        assert report["skipped"] and "fork" in report["skipped"][0]

    def test_requires_fork_enforced_on_fork_platforms(self, tmp_path):
        baseline = _baseline(
            tmp_path,
            {"proc": {"min_speedup": 2.0, "requires_cpus": 4, "requires_fork": True}},
        )
        report = run_check(
            baseline,
            results=_results(
                proc={"speedup": 0.9, "available_cpus": 8, "start_method": "fork"}
            ),
            env={},
        )
        assert not report["ok"]

    def test_no_floor_scenario_never_fails_on_ratio(self, tmp_path):
        # Advisory scenarios (e.g. fault_recovery, whose ratio measures
        # recovery *overhead*) are tracked but have no floor: any speedup
        # passes and the note lands in skipped.
        baseline = _baseline(tmp_path, {"fault": {"no_floor": True}})
        report = run_check(baseline, results=_results(fault=0.3), env={})
        assert report["ok"], report["failures"]
        assert report["skipped"] and "no_floor" in report["skipped"][0]

    def test_no_floor_scenario_must_still_produce_a_row(self, tmp_path):
        # no_floor waives the ratio, not the scenario's existence: silently
        # dropping it from the benchmark still fails the gate.
        baseline = _baseline(tmp_path, {"fault": {"no_floor": True}})
        report = run_check(baseline, results={"scenarios": {}}, env={})
        assert not report["ok"]
        assert "missing from benchmark results" in report["failures"][0]

    def test_advisory_on_ci_downgrades_to_warning(self, tmp_path):
        spec = {"par": {"min_speedup": 2.0, "advisory_on_ci": True}}
        results = _results(par={"speedup": 0.9, "available_cpus": 8})
        on_ci = run_check(_baseline(tmp_path, spec), results=results, env={"CI": "1"})
        assert on_ci["ok"], on_ci["failures"]
        assert on_ci["warnings"] and "advisory on CI" in on_ci["warnings"][0]
        # Off CI the same miss is a hard failure.
        local = run_check(_baseline(tmp_path, spec), results=results, env={})
        assert not local["ok"]
