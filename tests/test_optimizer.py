"""Optimizer-focused tests: plan shapes, costing, and random-pattern equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.errors import PlanningError
from repro.graph.generators import LabelledGraphSpec, generate_labelled_graph
from repro.index.config import IndexConfig
from repro.predicates import cmp, prop
from repro.query.naive import NaiveMatcher
from repro.query.operators import ExtendIntersect, MultiExtend, ScanVertices
from repro.query.optimizer import CostModel, Optimizer
from repro.query.pattern import QueryGraph


class TestPlanShapes:
    def test_single_vertex_query_is_a_scan(self, example_graph):
        db = Database(example_graph)
        query = QueryGraph("customers")
        query.add_vertex("c", label="Customer")
        plan = db.plan(query)
        assert len(plan.operators) == 1
        assert isinstance(plan.operators[0], ScanVertices)
        assert db.count(query) == 3

    def test_disconnected_pattern_rejected(self, example_graph):
        db = Database(example_graph)
        query = QueryGraph("disconnected")
        query.add_vertex("a")
        query.add_vertex("b")
        with pytest.raises(PlanningError):
            db.plan(query)

    def test_empty_pattern_rejected(self, example_graph):
        db = Database(example_graph)
        with pytest.raises(PlanningError):
            db.plan(QueryGraph("empty"))

    def test_selective_scan_is_chosen_as_start(self, example_graph):
        db = Database(example_graph)
        query = QueryGraph("alice")
        query.add_vertex("c", label="Customer")
        query.add_vertex("a", label="Account")
        query.add_edge("c", "a", label="Owns", name="r")
        query.add_predicate(cmp(prop("c", "name"), "=", "Alice"))
        plan = db.plan(query)
        scan = plan.operators[0]
        assert scan.var == "c"
        assert "Alice" in scan.predicate.describe()

    def test_cyclic_query_uses_multiway_intersection(self, labelled_graph):
        db = Database(labelled_graph)
        query = QueryGraph("triangle")
        for name in ("a", "b", "c"):
            query.add_vertex(name)
        query.add_edge("a", "b", label="EL0", name="e0")
        query.add_edge("b", "c", label="EL0", name="e1")
        query.add_edge("a", "c", label="EL0", name="e2")
        plan = db.plan(query)
        assert plan.num_multiway_intersections() >= 1

    def test_edge_labels_become_partition_key_values(self, example_graph):
        db = Database(example_graph)
        query = QueryGraph("wires")
        query.add_vertex("a", label="Account")
        query.add_vertex("b", label="Account")
        query.add_edge("a", "b", label="Wire", name="e0")
        plan = db.plan(query)
        assert "keys=(Wire)" in plan.describe()

    def test_estimated_cost_monotone_in_query_size(self, labelled_graph):
        db = Database(labelled_graph)
        small = QueryGraph("path2")
        for name in ("a", "b"):
            small.add_vertex(name)
        small.add_edge("a", "b", name="e0")
        large = QueryGraph("path4")
        for name in ("a", "b", "c", "d"):
            large.add_vertex(name)
        large.add_edge("a", "b", name="e0")
        large.add_edge("b", "c", name="e1")
        large.add_edge("c", "d", name="e2")
        assert db.plan(large).estimated_cost >= db.plan(small).estimated_cost

    def test_final_plan_binds_every_query_vertex(self, labelled_graph):
        db = Database(labelled_graph)
        query = QueryGraph("star")
        for name in ("a", "b", "c", "d"):
            query.add_vertex(name)
        query.add_edge("a", "b", name="e0")
        query.add_edge("a", "c", name="e1")
        query.add_edge("d", "a", name="e2")
        plan = db.plan(query)
        assert plan.binds_all_query_vertices()


class TestCostModel:
    def test_equality_selectivities(self, financial_graph):
        db = Database(financial_graph)
        query = QueryGraph("q")
        query.add_vertex("a", label="Account")
        model = CostModel(db.store, query)
        city_sel = model.conjunct_selectivity(cmp(prop("a", "city"), "=", "city0"))
        acc_sel = model.conjunct_selectivity(cmp(prop("a", "acc"), "=", "CQ"))
        assert city_sel < acc_sel <= 0.5
        id_sel = model.conjunct_selectivity(cmp(prop("a", "ID"), "=", 3))
        assert id_sel == pytest.approx(1.0 / financial_graph.num_vertices)

    def test_range_selectivity_for_id(self, financial_graph):
        db = Database(financial_graph)
        query = QueryGraph("q")
        query.add_vertex("a", label="Account")
        model = CostModel(db.store, query)
        sel = model.conjunct_selectivity(
            cmp(prop("a", "ID"), "<", financial_graph.num_vertices // 2)
        )
        assert 0.3 < sel <= 0.6

    def test_cross_variable_equality_selectivity(self, financial_graph):
        db = Database(financial_graph)
        query = QueryGraph("q")
        query.add_vertex("a", label="Account")
        query.add_vertex("b", label="Account")
        query.add_edge("a", "b", name="e0")
        model = CostModel(db.store, query)
        sel = model.conjunct_selectivity(cmp(prop("a", "city"), "=", prop("b", "city")))
        num_cities = financial_graph.schema.vertex_property("city").num_categories
        assert sel == pytest.approx(1.0 / num_cities)

    def test_scan_cardinality_uses_labels(self, example_graph):
        db = Database(example_graph)
        query = QueryGraph("q")
        query.add_vertex("c", label="Customer")
        model = CostModel(db.store, query)
        assert model.scan_cardinality("c", []) == pytest.approx(3.0)


def _random_path_query(num_vertices, labels, directions):
    query = QueryGraph(f"path{num_vertices}")
    for position in range(num_vertices):
        query.add_vertex(f"v{position}", label=labels[position])
    for position in range(num_vertices - 1):
        src, dst = f"v{position}", f"v{position + 1}"
        if directions[position]:
            src, dst = dst, src
        query.add_edge(src, dst, name=f"e{position}")
    return query


class TestRandomEquivalence:
    """Optimizer + executor agree with the oracle on random path/cycle patterns."""

    @settings(max_examples=15, deadline=None)
    @given(
        num_vertices=st.integers(min_value=2, max_value=4),
        label_seed=st.integers(min_value=0, max_value=2),
        directions=st.lists(st.booleans(), min_size=3, max_size=3),
        graph_seed=st.integers(min_value=0, max_value=3),
        close_cycle=st.booleans(),
    )
    def test_counts_match_oracle(
        self, num_vertices, label_seed, directions, graph_seed, close_cycle
    ):
        graph = generate_labelled_graph(
            LabelledGraphSpec(
                num_vertices=40,
                num_edges=160,
                num_vertex_labels=2,
                num_edge_labels=2,
                skew=0.2,
                seed=graph_seed,
            )
        )
        labels = [
            None if (label_seed + i) % 3 == 0 else f"VL{(label_seed + i) % 2}"
            for i in range(num_vertices)
        ]
        query = _random_path_query(num_vertices, labels, directions)
        if close_cycle and num_vertices >= 3:
            query.add_edge(f"v{num_vertices - 1}", "v0", name="e_close")
        db = Database(graph)
        oracle = NaiveMatcher(graph)
        assert db.count(query) == oracle.count(query)
