"""The server/database plan cache: memoization, invalidation, and bounds.

Covers PR 10's cache contracts:

* **Hit/miss accounting** — `PlanCache.stats` reconciles exactly with the
  lookups made; a hit returns the *same* :class:`QueryPlan` object (what the
  persistent pools' payload registry keys on).
* **Generation-based invalidation** — any ``install_state`` (maintenance
  flush, primary reconfiguration, index DDL) bumps the store generation, so
  the next structurally-identical submission misses, re-plans against the
  new state, and *reflects the new data* — while a pre-built ``QueryPlan``
  keeps replaying its own pinned generation (the PR 6 contract).
* **LRU bound** — the entry count never exceeds ``capacity``; overflow is
  counted in ``stats.evictions``.  ``capacity=0`` disables retention.
* **Determinism** — a cache-hit execution is byte-identical to a
  fresh-planned one on the serial, thread, and process backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database
from repro.errors import ExecutionError
from repro.query import PlanCache, QueryGraph, cmp, prop
from repro.query.backends import fork_available
from repro.query.plan_cache import DEFAULT_PLAN_CACHE_CAPACITY


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _wire(name="wire", src="a", dst="b", edge="e1"):
    q = QueryGraph(name)
    q.add_vertex(src, label="Account")
    q.add_vertex(dst, label="Account")
    q.add_edge(src, dst, label="Wire", name=edge)
    return q


def _wire_over(threshold, name="wire-over"):
    q = _wire(name)
    q.add_predicate(cmp(prop("e1", "amt"), ">", float(threshold)))
    return q


def _stats_dict(stats):
    return {
        "lists_accessed": stats.lists_accessed,
        "list_entries_fetched": stats.list_entries_fetched,
        "intermediate_rows": stats.intermediate_rows,
        "output_rows": stats.output_rows,
        "predicate_evaluations": stats.predicate_evaluations,
    }


# ----------------------------------------------------------------------
# PlanCache unit behaviour
# ----------------------------------------------------------------------
class TestPlanCacheUnit:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ExecutionError):
            PlanCache(capacity=-1)

    def test_default_capacity(self, example_db):
        assert example_db.plan_cache.capacity == DEFAULT_PLAN_CACHE_CAPACITY

    def test_get_or_plan_counts_and_memoizes(self, example_db):
        cache = PlanCache(capacity=4)
        generation = example_db.store.snapshot().state.generation
        calls = []

        def planner():
            plan = example_db.optimizer().optimize(_wire())
            plan.store_snapshot = example_db.store.snapshot()
            calls.append(1)
            return plan

        p1, hit1 = cache.get_or_plan(_wire(), generation, planner)
        p2, hit2 = cache.get_or_plan(_wire(), generation, planner)
        assert (hit1, hit2) == (False, True)
        assert p1 is p2
        assert len(calls) == 1
        assert cache.stats.snapshot() == {"hits": 1, "misses": 1, "evictions": 0}

    def test_generation_is_part_of_the_key(self, example_db):
        cache = PlanCache(capacity=4)

        def planner():
            plan = example_db.optimizer().optimize(_wire())
            plan.store_snapshot = example_db.store.snapshot()
            return plan

        _, hit1 = cache.get_or_plan(_wire(), 7, planner)
        _, hit2 = cache.get_or_plan(_wire(), 8, planner)
        assert (hit1, hit2) == (False, False)
        assert len(cache) == 2

    def test_lru_eviction_bound(self, example_db):
        capacity = 4
        db = Database(example_db.graph, plan_cache_capacity=capacity)
        for threshold in range(3 * capacity):
            db.plan(_wire_over(threshold))
        assert len(db.plan_cache) <= capacity
        assert db.plan_cache.stats.evictions == 3 * capacity - capacity
        # The most recent queries survived; the oldest were evicted.
        db.plan(_wire_over(3 * capacity - 1))
        db.plan(_wire_over(0))
        assert db.plan_cache.stats.snapshot()["hits"] == 1

    def test_lru_recency_order(self, example_db):
        db = Database(example_db.graph, plan_cache_capacity=2)
        db.plan(_wire_over(1))
        db.plan(_wire_over(2))
        db.plan(_wire_over(1))  # refresh 1 → 2 is now the LRU entry
        db.plan(_wire_over(3))  # evicts 2
        hits_before = db.plan_cache.stats.hits
        db.plan(_wire_over(1))
        assert db.plan_cache.stats.hits == hits_before + 1
        db.plan(_wire_over(2))  # must re-plan
        assert db.plan_cache.stats.hits == hits_before + 1

    def test_capacity_zero_disables_retention(self, example_db):
        db = Database(example_db.graph, plan_cache_capacity=0)
        p1 = db.plan(_wire())
        p2 = db.plan(_wire())
        assert p1 is not p2
        assert len(db.plan_cache) == 0
        assert db.plan_cache.stats.hits == 0
        assert db.plan_cache.stats.misses == 2
        # behaviour is identical minus the memoization
        assert db.count(_wire()) == example_db.count(_wire())

    def test_clear_and_describe(self, example_db):
        example_db.plan(_wire())
        assert len(example_db.plan_cache) == 1
        text = example_db.plan_cache.describe()
        assert "1/" in text and "misses=1" in text
        example_db.plan_cache.clear()
        assert len(example_db.plan_cache) == 0

    def test_database_describe_mentions_plan_cache(self, example_db):
        text = example_db.describe()
        assert "Plan cache" in text
        assert "fingerprint" in text


# ----------------------------------------------------------------------
# Database integration: one plan per (pattern, generation)
# ----------------------------------------------------------------------
class TestDatabaseIntegration:
    def test_renamed_query_hits_same_entry(self, example_db):
        p1 = example_db.plan(_wire())
        p2 = example_db.plan(_wire(name="other", src="x", dst="y", edge="w"))
        assert p1 is p2
        assert example_db.plan_cache.stats.snapshot()["hits"] == 1

    def test_run_count_collect_exists_share_the_entry(self, example_db):
        q = _wire()
        example_db.run(q)
        example_db.count(q)
        example_db.collect(q)
        example_db.exists(q)
        stats = example_db.plan_cache.stats.snapshot()
        assert stats["misses"] == 1
        assert stats["hits"] == 3

    def test_prebuilt_plan_bypasses_cache(self, example_db):
        plan = example_db.plan(_wire())
        before = example_db.plan_cache.stats.snapshot()
        example_db.count(plan)
        example_db.run(plan)
        assert example_db.plan_cache.stats.snapshot() == before

    def test_ddl_invalidates(self, example_db):
        q = _wire()
        example_db.plan(q)
        example_db.execute_ddl(
            "CREATE 1-HOP VIEW UsdWires MATCH vs-[eadj:Wire]->vd "
            "WHERE eadj.currency = USD "
            "INDEX AS FW-BW PARTITION BY eadj.label SORT BY vnbr.ID"
        )
        example_db.plan(q)
        stats = example_db.plan_cache.stats.snapshot()
        assert stats == {"hits": 0, "misses": 2, "evictions": 0}

    def test_reconfigure_invalidates(self, example_db):
        q = _wire()
        example_db.plan(q)
        example_db.execute_ddl(
            "RECONFIGURE PRIMARY INDEXES PARTITION BY eadj.label "
            "SORT BY vnbr.ID"
        )
        example_db.plan(q)
        assert example_db.plan_cache.stats.misses == 2


# ----------------------------------------------------------------------
# satellite 3: flush → resubmission must re-plan, not serve stale bindings
# ----------------------------------------------------------------------
class TestFlushInvalidation:
    def test_flush_misses_and_reflects_new_data(self, example_graph):
        db = Database(example_graph)
        q = _wire()
        count_before = db.count(q)
        stale_plan = db.plan(q)  # cached against the pre-flush generation
        generation_before = db.store.snapshot().state.generation

        maintainer = db.maintainer(merge_threshold=10**9)
        maintainer.insert_edges(np.array([0, 1]), np.array([1, 2]), "Wire")
        maintainer.flush()

        assert db.store.snapshot().state.generation > generation_before

        # A structurally identical resubmission misses the cache, re-plans
        # against the new generation, and sees the inserted edges...
        count_after = db.count(_wire(name="resubmitted", src="p", dst="q"))
        assert count_after == count_before + 2
        assert db.plan_cache.stats.misses >= 2

        # ...while the pre-built plan keeps the PR 6 pinned-generation
        # replay contract: byte-for-byte the old generation's answer.
        assert db.count(stale_plan) == count_before

    def test_flush_invalidates_server_side(self, example_graph):
        db = Database(example_graph)
        q = _wire()
        with db.server() as server:
            before = server.count(q)
            maintainer = db.maintainer(merge_threshold=10**9)
            maintainer.insert_edges(np.array([2]), np.array([3]), "Wire")
            maintainer.flush()
            after = server.count(_wire(name="post-flush"))
            assert after == before + 1
            stats = server.stats.snapshot()
            assert stats["plan_cache_misses"] == 2
            assert stats["plan_cache_hits"] == 0


# ----------------------------------------------------------------------
# determinism: cache-hit == fresh-planned, on every backend
# ----------------------------------------------------------------------
class TestCachedVsFreshByteIdentity:
    @pytest.mark.parametrize(
        "backend",
        [
            "serial",
            "thread",
            pytest.param(
                "process",
                marks=pytest.mark.skipif(
                    not fork_available(),
                    reason="process backend needs fork start method",
                ),
            ),
        ],
    )
    def test_backend(self, example_graph, backend):
        cached_db = Database(example_graph)
        fresh_db = Database(example_graph, plan_cache_capacity=0)
        q = _wire_over(40)

        cached_db.run(q, parallelism=2, backend=backend)  # warm the cache
        hit = cached_db.run(q, parallelism=2, backend=backend)
        assert cached_db.plan_cache.stats.hits >= 1
        fresh = fresh_db.run(q, parallelism=2, backend=backend)

        assert hit.matches == fresh.matches
        assert hit.count == fresh.count
        assert _stats_dict(hit.stats) == _stats_dict(fresh.stats)
