"""Tests for secondary vertex-partitioned A+ indexes and the bitmap variant."""

import numpy as np
import pytest

from repro.errors import IndexConfigError
from repro.graph import Direction
from repro.index.bitmap import BitmapSecondaryIndex
from repro.index.config import IndexConfig
from repro.index.primary import PrimaryIndex
from repro.index.vertex_partitioned import VertexPartitionedIndex
from repro.index.views import OneHopView
from repro.predicates import Predicate, cmp, prop
from repro.storage.partition_keys import PartitionKey
from repro.storage.sort_keys import SortKey


def usd_view():
    return OneHopView(
        name="UsdWires",
        predicate=Predicate.of(cmp(prop("eadj", "currency"), "=", "USD")),
        edge_label="Wire",
    )


class TestViewSelection:
    def test_one_hop_view_rejects_unknown_variables(self):
        with pytest.raises(IndexConfigError):
            OneHopView("bad", Predicate.of(cmp(prop("x", "amt"), ">", 1)))

    def test_global_view_flag(self):
        assert OneHopView("all").is_global
        assert not usd_view().is_global

    def test_selected_edges_match_bruteforce(self, example_graph):
        primary = PrimaryIndex(example_graph)
        index = VertexPartitionedIndex(
            example_graph,
            usd_view(),
            Direction.FORWARD,
            IndexConfig.default(),
            primary.forward,
        )
        expected = sum(
            1
            for e in range(example_graph.num_edges)
            if example_graph.edge_label_name(e) == "Wire"
            and example_graph.edge_property(e, "currency") == "USD"
        )
        assert index.num_indexed_edges == expected


class TestOffsetListStorage:
    def test_lists_are_subsets_of_primary_lists(self, example_graph):
        primary = PrimaryIndex(example_graph)
        index = VertexPartitionedIndex(
            example_graph,
            usd_view(),
            Direction.FORWARD,
            IndexConfig.default(),
            primary.forward,
        )
        for vertex in range(example_graph.num_vertices):
            secondary_edges, secondary_nbrs = index.list(vertex)
            primary_edges, _ = primary.forward.list(vertex)
            assert set(secondary_edges.tolist()) <= set(primary_edges.tolist())
            for edge, nbr in zip(secondary_edges, secondary_nbrs):
                assert example_graph.edge_property(int(edge), "currency") == "USD"
                assert int(example_graph.edge_dst[int(edge)]) == int(nbr)

    def test_backward_direction(self, example_graph):
        primary = PrimaryIndex(example_graph)
        index = VertexPartitionedIndex(
            example_graph,
            usd_view(),
            Direction.BACKWARD,
            IndexConfig.default(),
            primary.backward,
        )
        for vertex in range(example_graph.num_vertices):
            edges, nbrs = index.list(vertex)
            for edge, nbr in zip(edges, nbrs):
                assert int(example_graph.edge_dst[int(edge)]) == vertex
                assert int(example_graph.edge_src[int(edge)]) == int(nbr)

    def test_direction_mismatch_raises(self, example_graph):
        primary = PrimaryIndex(example_graph)
        with pytest.raises(IndexConfigError):
            VertexPartitionedIndex(
                example_graph,
                usd_view(),
                Direction.FORWARD,
                IndexConfig.default(),
                primary.backward,
            )

    def test_custom_sorting_on_city(self, financial_graph):
        primary = PrimaryIndex(financial_graph)
        config = IndexConfig(
            partition_keys=(PartitionKey.edge_label(),),
            sort_keys=(SortKey.nbr_property("city"), SortKey.neighbour_id()),
        )
        index = VertexPartitionedIndex(
            financial_graph,
            OneHopView("VPc"),
            Direction.FORWARD,
            config,
            primary.forward,
        )
        city = financial_graph.vertex_props.column("city")
        for vertex in range(0, financial_graph.num_vertices, 7):
            for label in financial_graph.schema.edge_labels.names:
                _, nbrs = index.list(vertex, [label])
                cities = city[nbrs]
                assert list(cities) == sorted(cities)


class TestPartitionLevelSharing:
    def test_global_same_structure_shares_levels(self, financial_graph):
        primary = PrimaryIndex(financial_graph)
        config = IndexConfig(
            partition_keys=(PartitionKey.edge_label(),),
            sort_keys=(SortKey.nbr_property("city"),),
        )
        index = VertexPartitionedIndex(
            financial_graph, OneHopView("VPc"), Direction.FORWARD, config, primary.forward
        )
        assert index.shares_partition_levels
        breakdown = index.memory_breakdown()
        assert breakdown.partition_level_bytes == 0
        assert breakdown.offset_list_bytes > 0

    def test_view_with_predicate_needs_own_levels(self, example_graph):
        primary = PrimaryIndex(example_graph)
        index = VertexPartitionedIndex(
            example_graph,
            usd_view(),
            Direction.FORWARD,
            IndexConfig.default(),
            primary.forward,
        )
        assert not index.shares_partition_levels
        assert index.memory_breakdown().partition_level_bytes > 0

    def test_offset_lists_much_smaller_than_id_lists(self, financial_graph):
        """The headline space claim: a few bytes per indexed edge instead of 12."""
        primary = PrimaryIndex(financial_graph)
        config = IndexConfig(
            partition_keys=(PartitionKey.edge_label(),),
            sort_keys=(SortKey.nbr_property("city"),),
        )
        index = VertexPartitionedIndex(
            financial_graph, OneHopView("VPc"), Direction.FORWARD, config, primary.forward
        )
        per_edge = index.memory_breakdown().total / index.num_indexed_edges
        assert per_edge <= 2.0  # bytes per indexed edge
        primary_per_edge = primary.forward.id_lists.nbytes() / financial_graph.num_edges
        assert per_edge < primary_per_edge / 4


class TestBitmapIndex:
    def test_bitmap_matches_offset_list_contents(self, example_graph):
        primary = PrimaryIndex(example_graph)
        offsets = VertexPartitionedIndex(
            example_graph,
            usd_view(),
            Direction.FORWARD,
            IndexConfig.default(),
            primary.forward,
        )
        bitmap = BitmapSecondaryIndex(
            example_graph, usd_view(), Direction.FORWARD, primary.forward
        )
        for vertex in range(example_graph.num_vertices):
            bitmap_edges, _ = bitmap.list(vertex)
            offset_edges, _ = offsets.list(vertex)
            assert sorted(bitmap_edges.tolist()) == sorted(offset_edges.tolist())

    def test_bitmap_size_independent_of_selectivity(self, example_graph):
        primary = PrimaryIndex(example_graph)
        selective = BitmapSecondaryIndex(
            example_graph, usd_view(), Direction.FORWARD, primary.forward
        )
        unselective = BitmapSecondaryIndex(
            example_graph, OneHopView("all"), Direction.FORWARD, primary.forward
        )
        assert selective.nbytes() == unselective.nbytes()
        assert selective.nbytes() == (example_graph.num_edges + 7) // 8

    def test_bitmap_access_cost_is_primary_list_length(self, example_graph):
        primary = PrimaryIndex(example_graph)
        bitmap = BitmapSecondaryIndex(
            example_graph, usd_view(), Direction.FORWARD, primary.forward
        )
        for vertex in range(example_graph.num_vertices):
            assert bitmap.access_cost(vertex) == primary.forward.degree(vertex)

    def test_bitmap_direction_mismatch_raises(self, example_graph):
        primary = PrimaryIndex(example_graph)
        with pytest.raises(IndexConfigError):
            BitmapSecondaryIndex(
                example_graph, usd_view(), Direction.FORWARD, primary.backward
            )
