"""Unit tests for MatchBatch and the physical operators on hand-built plans."""

import numpy as np
import pytest

from repro.errors import ExecutionError, PlanningError
from repro.graph import Direction
from repro.index.index_store import IndexStore
from repro.index.primary import PrimaryIndex
from repro.predicates import Predicate, cmp, prop
from repro.query.binding import MatchBatch, concat_batches
from repro.query.executor import Executor
from repro.query.operators import (
    ExecutionContext,
    ExtendIntersect,
    ExtensionLeg,
    Filter,
    MultiExtend,
    ScanVertices,
    SortedRangeFilter,
)
from repro.query.pattern import QueryGraph
from repro.query.plan import QueryPlan
from repro.predicates import CompareOp
from repro.storage.sort_keys import SortKey


class TestMatchBatch:
    def test_basic_accessors(self):
        batch = MatchBatch({"a": np.array([1, 2, 3]), "b": np.array([4, 5, 6])})
        assert len(batch) == 3
        assert set(batch.variables) == {"a", "b"}
        assert batch.row(1) == {"a": 2, "b": 5}
        assert batch.has_variable("a") and not batch.has_variable("c")

    def test_ragged_batch_rejected(self):
        with pytest.raises(ExecutionError):
            MatchBatch({"a": np.array([1]), "b": np.array([1, 2])})

    def test_select_repeat_with_columns(self):
        batch = MatchBatch({"a": np.array([1, 2, 3])})
        selected = batch.select(np.array([True, False, True]))
        assert selected.column("a").tolist() == [1, 3]
        repeated = batch.repeat(np.array([2, 0, 1]))
        assert repeated.column("a").tolist() == [1, 1, 3]
        extended = batch.with_columns({"b": np.array([7, 8, 9])})
        assert extended.column("b").tolist() == [7, 8, 9]
        with pytest.raises(ExecutionError):
            extended.with_columns({"b": np.array([1, 2, 3])})

    def test_concat_and_split(self):
        first = MatchBatch({"a": np.array([1, 2])})
        second = MatchBatch({"a": np.array([3])})
        merged = first.concat(second)
        assert merged.column("a").tolist() == [1, 2, 3]
        chunks = list(merged.split(2))
        assert [len(c) for c in chunks] == [2, 1]
        assert concat_batches([first, second]).column("a").tolist() == [1, 2, 3]
        assert concat_batches([]) is None

    def test_unknown_column_raises(self):
        batch = MatchBatch({"a": np.array([1])})
        with pytest.raises(ExecutionError):
            batch.column("zz")


def build_store(graph):
    return IndexStore(graph, PrimaryIndex(graph))


def make_leg(store, direction, bound, target, edge_var, key_values=(), **kwargs):
    path = store.find_vertex_access_paths(direction, Predicate.true())[0]
    path.key_values = tuple(key_values)
    path.covers_all_levels = len(path.key_values) == len(path.index.config.partition_keys)
    return ExtensionLeg(
        access_path=path,
        bound_var=bound,
        target_var=target,
        edge_var=edge_var,
        presorted_by_nbr=path.sorted_by_neighbour_id,
        **kwargs,
    )


class TestScanAndExtend:
    def test_scan_with_label_and_predicate(self, example_graph):
        query = QueryGraph("q")
        query.add_vertex("c", label="Customer")
        scan = ScanVertices(
            var="c", label="Customer", predicate=Predicate.of(cmp(prop("c", "name"), "=", "Bob"))
        )
        context = ExecutionContext(graph=example_graph, query=query)
        batches = list(scan.execute(context))
        total = sum(len(b) for b in batches)
        assert total == 1

    def test_single_leg_extend_matches_adjacency(self, example_graph):
        store = build_store(example_graph)
        query = QueryGraph("q")
        query.add_vertex("a")
        query.add_vertex("b")
        query.add_edge("a", "b", name="e0")
        plan = QueryPlan(
            query=query,
            operators=[
                ScanVertices(var="a"),
                ExtendIntersect(
                    target_var="b",
                    legs=[make_leg(store, Direction.FORWARD, "a", "b", "e0")],
                ),
            ],
        )
        count = Executor(example_graph).count(plan)
        assert count == example_graph.num_edges

    def test_two_leg_intersection(self, example_graph):
        # Wedges a -> b <- c  closed into common neighbours: count pairs of
        # incoming edges per shared destination.
        store = build_store(example_graph)
        query = QueryGraph("q")
        for name in ("a", "c", "b"):
            query.add_vertex(name)
        query.add_edge("a", "b", name="e0")
        query.add_edge("c", "b", name="e1")
        plan = QueryPlan(
            query=query,
            operators=[
                ScanVertices(var="a"),
                ExtendIntersect(
                    target_var="c",
                    legs=[
                        ExtensionLeg(
                            access_path=store.find_vertex_access_paths(
                                Direction.FORWARD, Predicate.true()
                            )[0],
                            bound_var="a",
                            target_var="c",
                            edge_var="_dummy",
                        )
                    ],
                ),
            ],
        )
        # Simpler equivalent check: intersection of a's and c's forward lists
        # equals the brute-force count of common out-neighbours.
        executor = Executor(example_graph)
        query2 = QueryGraph("wedge")
        for name in ("a", "c", "b"):
            query2.add_vertex(name)
        query2.add_edge("a", "b", name="e0")
        query2.add_edge("c", "b", name="e1")
        plan2 = QueryPlan(
            query=query2,
            operators=[
                ScanVertices(var="a"),
                ExtendIntersect(
                    target_var="c",
                    legs=[make_leg(store, Direction.FORWARD, "a", "c", "_x")],
                ),
                ExtendIntersect(
                    target_var="b",
                    legs=[
                        make_leg(store, Direction.FORWARD, "a", "b", "e0"),
                        make_leg(store, Direction.FORWARD, "c", "b", "e1"),
                    ],
                ),
            ],
        )
        # Brute force count of (a, c, b) with a->b and c->b, where c is any
        # out-neighbour of a (that is what plan2's first extend produces).
        out = {}
        for e in range(example_graph.num_edges):
            out.setdefault(int(example_graph.edge_src[e]), []).append(
                int(example_graph.edge_dst[e])
            )
        expected = 0
        for a, nbrs in out.items():
            for c in nbrs:
                for b in out.get(a, []):
                    expected += out.get(c, []).count(b)
        assert executor.count(plan2) == expected

    def test_tracked_edges_are_bound(self, example_graph):
        store = build_store(example_graph)
        query = QueryGraph("q")
        query.add_vertex("a")
        query.add_vertex("b")
        query.add_edge("a", "b", name="e0")
        leg = make_leg(store, Direction.FORWARD, "a", "b", "e0", track_edge=True)
        plan = QueryPlan(
            query=query,
            operators=[ScanVertices(var="a"), ExtendIntersect(target_var="b", legs=[leg])],
        )
        rows = Executor(example_graph).collect(plan)
        assert all("e0" in row for row in rows)
        for row in rows:
            assert int(example_graph.edge_src[row["e0"]]) == row["a"]
            assert int(example_graph.edge_dst[row["e0"]]) == row["b"]

    def test_sorted_range_filter(self, example_graph):
        values_key = SortKey.edge_property("date")
        # Primary with no nested partitioning and a date sort: the level-0
        # list is the most granular group, so a binary-search filter is valid.
        from repro.index.config import IndexConfig

        config = IndexConfig(
            partition_keys=(),
            sort_keys=(values_key, SortKey.neighbour_id()),
        )
        store = IndexStore(example_graph, PrimaryIndex(example_graph, config=config))
        path = store.find_vertex_access_paths(Direction.FORWARD, Predicate.true())[0]
        leg = ExtensionLeg(
            access_path=path,
            bound_var="a",
            target_var="b",
            edge_var="e0",
            track_edge=True,
            sorted_filter=SortedRangeFilter(sort_key=values_key, op=CompareOp.LT, value=10),
        )
        query = QueryGraph("q")
        query.add_vertex("a")
        query.add_vertex("b")
        query.add_edge("a", "b", name="e0")
        plan = QueryPlan(
            query=query,
            operators=[ScanVertices(var="a"), ExtendIntersect(target_var="b", legs=[leg])],
        )
        rows = Executor(example_graph).collect(plan)
        expected = sum(
            1
            for e in range(example_graph.num_edges)
            if (example_graph.edge_property(e, "date") or 10**9) < 10
        )
        assert len(rows) == expected
        assert all(example_graph.edge_property(r["e0"], "date") < 10 for r in rows)

    def test_filter_operator(self, example_graph):
        store = build_store(example_graph)
        query = QueryGraph("q")
        query.add_vertex("a")
        query.add_vertex("b")
        query.add_edge("a", "b", name="e0")
        plan = QueryPlan(
            query=query,
            operators=[
                ScanVertices(var="a"),
                ExtendIntersect(
                    target_var="b",
                    legs=[make_leg(store, Direction.FORWARD, "a", "b", "e0")],
                ),
                Filter(Predicate.of(cmp(prop("b", "label"), "=", "Account"))),
            ],
        )
        count = Executor(example_graph).count(plan)
        expected = sum(
            1
            for e in range(example_graph.num_edges)
            if example_graph.vertex_label_name(int(example_graph.edge_dst[e])) == "Account"
        )
        assert count == expected


class TestPlanValidation:
    def test_plan_must_start_with_scan(self, example_graph):
        query = QueryGraph("q")
        query.add_vertex("a")
        with pytest.raises(PlanningError):
            QueryPlan(query=query, operators=[Filter(Predicate.true())])

    def test_plan_introspection(self, example_graph):
        store = build_store(example_graph)
        query = QueryGraph("q")
        query.add_vertex("a")
        query.add_vertex("b")
        query.add_edge("a", "b", name="e0")
        plan = QueryPlan(
            query=query,
            operators=[
                ScanVertices(var="a"),
                ExtendIntersect(
                    target_var="b",
                    legs=[make_leg(store, Direction.FORWARD, "a", "b", "e0")],
                ),
            ],
        )
        assert plan.binds_all_query_vertices()
        assert plan.uses_index("primary-fw")
        assert not plan.uses_index("VPc")
        assert plan.num_multiway_intersections() == 0
        assert "SCAN" in plan.describe()
