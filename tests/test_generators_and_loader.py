"""Tests for the synthetic generators, dataset registry, loader and statistics."""

import numpy as np
import pytest

from repro.errors import GraphBuildError
from repro.graph import Direction
from repro.graph.generators import (
    FinancialGraphSpec,
    LabelledGraphSpec,
    SocialGraphSpec,
    generate_financial_graph,
    generate_labelled_graph,
    generate_social_graph,
)
from repro.graph.loader import assign_random_labels, load_csv, load_edge_list
from repro.graph.statistics import DegreeSummary, GraphStatistics
from repro.workloads import datasets


class TestGenerators:
    def test_labelled_graph_sizes_and_labels(self):
        graph = generate_labelled_graph(
            LabelledGraphSpec(500, 3000, num_vertex_labels=4, num_edge_labels=3, seed=1)
        )
        assert graph.num_vertices == 500
        assert graph.num_edges == 3000
        assert graph.schema.num_vertex_labels == 4
        assert graph.schema.num_edge_labels == 3
        assert set(np.unique(graph.vertex_labels)) <= set(range(4))

    def test_generators_are_deterministic(self):
        spec = LabelledGraphSpec(200, 1000, 2, 2, seed=9)
        first = generate_labelled_graph(spec)
        second = generate_labelled_graph(spec)
        assert np.array_equal(first.edge_src, second.edge_src)
        assert np.array_equal(first.edge_dst, second.edge_dst)
        assert np.array_equal(first.edge_labels, second.edge_labels)

    def test_no_self_loops(self):
        graph = generate_labelled_graph(LabelledGraphSpec(100, 2000, seed=3))
        assert not np.any(graph.edge_src == graph.edge_dst)

    def test_power_law_graph_is_skewed(self):
        graph = generate_labelled_graph(LabelledGraphSpec(2000, 20000, seed=5, skew=0.9))
        degrees = graph.out_degree()
        # A skewed graph has a maximum degree well above the average.
        assert degrees.max() > 5 * degrees.mean()

    def test_uniform_graph_when_skew_zero(self):
        graph = generate_labelled_graph(LabelledGraphSpec(2000, 20000, seed=5, skew=0.0))
        degrees = graph.out_degree()
        assert degrees.max() < 8 * max(degrees.mean(), 1)

    def test_social_graph_has_time_property(self):
        graph = generate_social_graph(SocialGraphSpec(100, 500, seed=2))
        times = graph.edge_props.column("time")
        assert len(times) == 500
        assert times.min() >= 0

    def test_financial_graph_properties(self):
        graph = generate_financial_graph(
            FinancialGraphSpec(100, 600, num_cities=5, seed=4)
        )
        assert graph.schema.num_edge_labels == 2
        amounts = graph.edge_props.column("amt")
        assert amounts.min() >= 1 and amounts.max() <= 1000
        cities = graph.vertex_props.column("city")
        assert cities.min() >= 0 and cities.max() < 5


class TestDatasetRegistry:
    def test_dataset_names(self):
        assert set(datasets.dataset_names()) == {"ork", "lj", "wt", "brk"}

    def test_relative_size_ordering_preserved(self):
        sizes = {
            name: datasets.DATASETS[name].num_edges for name in datasets.dataset_names()
        }
        assert sizes["ork"] > sizes["lj"] > sizes["wt"] > sizes["brk"]

    def test_labelled_dataset_cached(self):
        first = datasets.labelled_dataset("brk", 2, 2, scale=0.1)
        second = datasets.labelled_dataset("brk", 2, 2, scale=0.1)
        assert first is second
        datasets.clear_cache()
        third = datasets.labelled_dataset("brk", 2, 2, scale=0.1)
        assert third is not first

    def test_table1_rows_have_paper_and_measured_columns(self):
        rows = datasets.table1_rows(scale=0.05)
        assert len(rows) == 4
        for row in rows:
            assert row["vertices"] > 0
            assert row["edges"] > 0
            assert "paper_edges" in row


class TestLoader:
    def test_load_edge_list(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n0 1\n1 2\n2 0 Friend\n")
        graph = load_edge_list(path)
        assert graph.num_vertices == 3
        assert graph.num_edges == 3
        assert graph.edge_label_name(2) == "Friend"

    def test_load_edge_list_malformed_line(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0\n")
        with pytest.raises(GraphBuildError):
            load_edge_list(path)

    def test_assign_random_labels(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 2\n2 3\n3 0\n")
        graph = load_edge_list(path)
        labelled = assign_random_labels(graph, 3, 2, seed=1)
        assert labelled.schema.num_vertex_labels == 3
        assert labelled.schema.num_edge_labels == 2
        assert labelled.num_edges == graph.num_edges

    def test_load_csv(self, tmp_path):
        vertex_csv = tmp_path / "v.csv"
        vertex_csv.write_text("id,label,city\nA,Account,SF\nB,Account,LA\n")
        edge_csv = tmp_path / "e.csv"
        edge_csv.write_text("src,dst,label,amt\nA,B,Wire,10\n")
        graph = load_csv(vertex_csv, edge_csv)
        assert graph.num_vertices == 2
        assert graph.num_edges == 1
        assert graph.edge_property(0, "amt") == 10
        assert graph.vertex_property(0, "city") == "SF"

    def test_load_csv_requires_id_column(self, tmp_path):
        vertex_csv = tmp_path / "v.csv"
        vertex_csv.write_text("name,label\nA,Account\n")
        edge_csv = tmp_path / "e.csv"
        edge_csv.write_text("src,dst\nA,A\n")
        with pytest.raises(GraphBuildError):
            load_csv(vertex_csv, edge_csv)


class TestStatistics:
    def test_degree_summary(self):
        summary = DegreeSummary.from_degrees(np.array([1, 2, 3, 4, 100]))
        assert summary.maximum == 100
        assert summary.mean == pytest.approx(22.0)

    def test_empty_degree_summary(self):
        summary = DegreeSummary.from_degrees(np.array([], dtype=int))
        assert summary.maximum == 0

    def test_label_selectivities_sum_to_one(self, labelled_graph):
        stats = GraphStatistics(labelled_graph)
        total = sum(
            stats.edge_label_selectivity(code)
            for code in range(labelled_graph.schema.num_edge_labels)
        )
        assert total == pytest.approx(1.0)
        total_v = sum(
            stats.vertex_label_selectivity(code)
            for code in range(labelled_graph.schema.num_vertex_labels)
        )
        assert total_v == pytest.approx(1.0)

    def test_average_degree_scaling(self, labelled_graph):
        stats = GraphStatistics(labelled_graph)
        full = stats.average_degree(Direction.FORWARD)
        halved = stats.average_degree(Direction.FORWARD, extra_selectivity=0.5)
        assert halved == pytest.approx(full / 2)
        assert stats.average_degree(Direction.FORWARD, edge_label_code=0) <= full
