"""Differential + unit coverage for factorized counting (aggregate pushdown).

The factorization contract: for any plan with a factorizable terminal suffix,
``count(plan, factorized=True)`` — trailing extensions kept as unexpanded
cardinality segments, count = per-prefix-row product of segment sizes — is
**identical** to the flat oracle count, for every graph shape of the zoo
(uniform, Zipf-skewed, star, empty), every backend (``serial``, ``thread``,
``process``) and every morsel weighting.  A small always-on subset pins the
contract in tier-1; the full backend × weighting matrix is marked ``fuzz``
(opt-in via ``RUN_FUZZ=1``, nightly in CI) because process pools are too slow
for the default suite.

Also covered here: the cardinality-product arithmetic on empty prefixes and
zero-fanout legs, ``FactorizedBatch.flatten`` against the flat pipeline, the
suffix analysis on dependent pipelines, the factorized-only stats counters,
and the ``PlanRunner.collect(limit=)`` / ``run(materialize=True)`` sink
behaviour fixed alongside the factorized sinks.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import Database
from repro.errors import ExecutionError
from repro.graph import Direction, GraphBuilder
from repro.graph.generators import LabelledGraphSpec, generate_labelled_graph
from repro.index.config import IndexConfig
from repro.index.index_store import IndexStore
from repro.index.primary import PrimaryIndex
from repro.predicates import Predicate, cmp, prop
from repro.query import MorselExecutor, QueryGraph
from repro.query.binding import MatchBatch
from repro.query.executor import CountSink, Executor, FlattenSink
from repro.query.factorized import FactorizedBatch, FactorizedSegment
from repro.query.naive import NaiveMatcher
from repro.query.operators import (
    ExtendIntersect,
    ExtensionLeg,
    Filter,
    MultiExtend,
    ScanVertices,
)
from repro.query.plan import QueryPlan
from repro.storage.sort_keys import SortKey

BACKEND_NAMES = ("serial", "thread", "process")
WEIGHTING_NAMES = ("even", "degree")

fuzz = pytest.mark.skipif(
    os.environ.get("RUN_FUZZ") != "1",
    reason="factorized backend fuzz matrix is opt-in; set RUN_FUZZ=1 to run",
)


# ----------------------------------------------------------------------
# seeded graph shapes (mirrors tests/test_backend_equivalence.py)
# ----------------------------------------------------------------------
def _labelled(skew: float, seed: int):
    return generate_labelled_graph(
        LabelledGraphSpec(
            num_vertices=80,
            num_edges=320,
            num_vertex_labels=2,
            num_edge_labels=2,
            skew=skew,
            seed=seed,
        )
    )


def _star_graph():
    """Two hubs and a light rim: maximal combination fan-out per prefix row."""
    builder = GraphBuilder()
    for i in range(60):
        builder.add_vertex(f"VL{i % 2}")
    for spoke in range(1, 40):
        builder.add_edge(0, spoke, "EL0")
        builder.add_edge(spoke, 0, "EL0")
    for spoke in range(31, 59):
        builder.add_edge(30, spoke, "EL1")
    builder.add_edge(30, 0, "EL1")
    return builder.build()


def _empty_graph():
    builder = GraphBuilder()
    for _ in range(25):
        builder.add_vertex("VL0")
    return builder.build()


GRAPHS = {
    "uniform": lambda seed: _labelled(0.0, seed),
    "zipf": lambda seed: _labelled(1.0, seed),
    "star": lambda seed: _star_graph(),
    "empty": lambda seed: _empty_graph(),
}


# ----------------------------------------------------------------------
# the query zoo: shapes with different factorizable suffixes
# ----------------------------------------------------------------------
def _one_leg():
    query = QueryGraph("one_leg")
    query.add_vertex("a")
    query.add_vertex("b")
    query.add_edge("a", "b", name="e0")
    return query


def _star_two():
    query = QueryGraph("star_two")
    for name in ("a", "b", "c"):
        query.add_vertex(name)
    query.add_edge("a", "b", name="e0")
    query.add_edge("a", "c", name="e1")
    return query


def _star_three():
    query = QueryGraph("star_three")
    for name in ("a", "b", "c", "d"):
        query.add_vertex(name)
    query.add_edge("a", "b", name="e0")
    query.add_edge("a", "c", name="e1")
    query.add_edge("a", "d", name="e2")
    return query


def _triangle():
    query = QueryGraph("triangle")
    for name in ("a", "b", "c"):
        query.add_vertex(name)
    query.add_edge("a", "b", name="e0")
    query.add_edge("a", "c", name="e1")
    query.add_edge("b", "c", name="e2")
    return query


def _predicated_star():
    query = QueryGraph("predicated_star")
    for name in ("a", "b", "c"):
        query.add_vertex(name)
    query.add_edge("a", "b", name="e0")
    query.add_edge("a", "c", name="e1")
    query.add_predicate(cmp(prop("a", "ID"), "<", 40))
    return query


ZOO = {
    "one_leg": _one_leg,
    "star_two": _star_two,
    "star_three": _star_three,
    "triangle": _triangle,
    "predicated_star": _predicated_star,
}


_CACHE = {}


def _baseline(graph_key: str, seed: int, shape: str):
    """(db, plan, flat count) with the flat count pinned to the naive oracle."""
    key = (graph_key, seed, shape)
    if key not in _CACHE:
        graph_cache_key = ("graph", graph_key, seed)
        if graph_cache_key not in _CACHE:
            graph = GRAPHS[graph_key](seed)
            _CACHE[graph_cache_key] = (graph, Database(graph))
        graph, db = _CACHE[graph_cache_key]
        plan = db.plan(ZOO[shape]())
        flat = Executor(db.graph, batch_size=db.batch_size).count(
            plan, factorized=False
        )
        assert flat == NaiveMatcher(graph).count(ZOO[shape]()), (
            f"flat count disagrees with the naive oracle on {graph_key}/{shape}"
        )
        _CACHE[key] = (db, plan, flat)
    return _CACHE[key]


def check_combo(
    graph_key: str,
    seed: int,
    shape: str,
    backend: str = "serial",
    weighting: str = "degree",
    num_workers: int = 2,
):
    db, plan, flat = _baseline(graph_key, seed, shape)
    assert plan.supports_factorized_count, (
        f"the zoo plan for {shape!r} should end in a factorizable suffix"
    )
    serial = Executor(db.graph, batch_size=db.batch_size)
    assert serial.count(plan, factorized=True) == flat
    executor = MorselExecutor(
        db.graph,
        batch_size=db.batch_size,
        num_workers=num_workers,
        backend=backend,
        weighting=weighting,
    )
    assert executor.count(plan, factorized=True) == flat


# ----------------------------------------------------------------------
# tier-1 subset: every graph × shape serially, every backend on one combo
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shape", sorted(ZOO))
@pytest.mark.parametrize("graph_key", sorted(GRAPHS))
def test_factorized_count_matches_flat_serial(graph_key, shape):
    check_combo(graph_key, seed=101, shape=shape, backend="serial")


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_factorized_count_matches_flat_across_backends(backend):
    check_combo("zipf", seed=101, shape="star_three", backend=backend)


def test_database_count_auto_factorizes(example_graph):
    db = Database(example_graph)
    query = _star_two()
    plan = db.plan(query)
    assert plan.supports_factorized_count
    flat = db.count(query, factorized=False)
    assert db.count(query) == flat
    assert db.count(query, factorized=True) == flat
    assert db.count(plan) == flat  # pre-built plans take the same path


# ----------------------------------------------------------------------
# nightly fuzz matrix: full graph × shape × backend × weighting
# ----------------------------------------------------------------------
@fuzz
@pytest.mark.fuzz
@pytest.mark.parametrize("weighting", WEIGHTING_NAMES)
@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("shape", sorted(ZOO))
@pytest.mark.parametrize("graph_key", sorted(GRAPHS))
def test_factorized_count_full_matrix(graph_key, shape, backend, weighting):
    check_combo(graph_key, seed=211, shape=shape, backend=backend, weighting=weighting)


@fuzz
@pytest.mark.fuzz
@pytest.mark.parametrize("num_workers", [1, 3, 5])
def test_factorized_count_worker_counts(num_workers):
    check_combo(
        "star", seed=211, shape="star_three", backend="thread", num_workers=num_workers
    )


# ----------------------------------------------------------------------
# MultiExtend suffixes (hand-built plans over the financial graph)
# ----------------------------------------------------------------------
def _forward_leg(store, bound, target, edge_var, **kwargs):
    path = store.find_vertex_access_paths(Direction.FORWARD, Predicate.true())[0]
    return ExtensionLeg(
        access_path=path,
        bound_var=bound,
        target_var=target,
        edge_var=edge_var,
        presorted_by_nbr=path.sorted_by_neighbour_id,
        **kwargs,
    )


def _multi_extend_plan(store, city_key, shared_target: bool, limit: int = 40):
    query = QueryGraph("city_join")
    query.add_vertex("a")
    if shared_target:
        query.add_vertex("b")
        query.add_edge("a", "b", name="e0")
        targets = ("b", "b")
    else:
        query.add_vertex("b1")
        query.add_vertex("b2")
        query.add_edge("a", "b1", name="e0")
        query.add_edge("a", "b2", name="e1")
        targets = ("b1", "b2")
    legs = [
        _forward_leg(store, "a", targets[0], "e0", track_edge=True),
        _forward_leg(store, "a", targets[1], "e1", track_edge=True),
    ]
    return QueryPlan(
        query=query,
        operators=[
            ScanVertices(
                var="a", predicate=Predicate.of(cmp(prop("a", "ID"), "<", limit))
            ),
            MultiExtend(legs=legs, equality_key=city_key),
        ],
    )


@pytest.mark.parametrize("presorted", [True, False])
def test_multi_extend_factorized_count(financial_graph, presorted):
    city_key = SortKey.nbr_property("city")
    if presorted:
        config = IndexConfig(
            partition_keys=(), sort_keys=(city_key, SortKey.neighbour_id())
        )
    else:
        config = IndexConfig.flat()
    store = IndexStore(financial_graph, PrimaryIndex(financial_graph, config=config))
    plan = _multi_extend_plan(store, city_key, shared_target=False)
    assert plan.supports_factorized_count
    executor = Executor(financial_graph)
    flat = executor.count(plan, factorized=False)
    assert flat > 0
    assert executor.count(plan, factorized=True) == flat
    for backend in BACKEND_NAMES:
        morsel = MorselExecutor(financial_graph, num_workers=2, backend=backend)
        assert morsel.count(plan, factorized=True) == flat


def test_multi_extend_shared_target_stays_flat(financial_graph):
    """Shared-target joins reconcile per combination: never factorized."""
    city_key = SortKey.nbr_property("city")
    store = IndexStore(financial_graph, PrimaryIndex(financial_graph))
    plan = _multi_extend_plan(store, city_key, shared_target=True)
    assert not plan.supports_factorized_count
    executor = Executor(financial_graph)
    with pytest.raises(ExecutionError, match="no factorizable suffix"):
        executor.count(plan, factorized=True)
    # the auto path silently falls back to the flat pipeline
    assert executor.count(plan) == executor.count(plan, factorized=False)


# ----------------------------------------------------------------------
# suffix analysis
# ----------------------------------------------------------------------
def test_suffix_excludes_dependent_extension(example_db):
    """A triangle's closing intersect reads the middle extension's output,
    so only the last operator may stay unexpanded."""
    plan = example_db.plan(_triangle())
    assert plan.factorized_suffix_start() == len(plan.operators) - 1
    assert plan.supports_factorized_count


def test_suffix_covers_independent_star_legs(example_db):
    plan = example_db.plan(_star_three())
    # scan + three independent extensions off the scanned vertex
    assert plan.factorized_suffix_start() == 1
    assert "factorized count" in plan.describe()


def test_trailing_filter_blocks_factorization(example_graph):
    store = IndexStore(example_graph, PrimaryIndex(example_graph))
    query = _one_leg()
    plan = QueryPlan(
        query=query,
        operators=[
            ScanVertices(var="a"),
            ExtendIntersect(
                target_var="b", legs=[_forward_leg(store, "a", "b", "e0")]
            ),
            Filter(predicate=Predicate.of(cmp(prop("b", "ID"), "<", 4))),
        ],
    )
    assert not plan.supports_factorized_count
    assert "flat only" in plan.describe()


def test_rowwise_extension_blocks_factorization(example_graph):
    store = IndexStore(example_graph, PrimaryIndex(example_graph))
    plan = QueryPlan(
        query=_one_leg(),
        operators=[
            ScanVertices(var="a"),
            ExtendIntersect(
                target_var="b",
                legs=[_forward_leg(store, "a", "b", "e0")],
                vectorized=False,
            ),
        ],
    )
    assert not plan.supports_factorized_count


def test_run_factorized_rejects_materialize(example_db):
    plan = example_db.plan(_star_two())
    with pytest.raises(ExecutionError, match="count-only"):
        Executor(example_db.graph).run(plan, materialize=True, factorized=True)


# ----------------------------------------------------------------------
# factorized stats counters
# ----------------------------------------------------------------------
def test_factorized_stats_counters(example_db):
    plan = example_db.plan(_star_two())
    executor = Executor(example_db.graph)
    flat = executor.run(plan)
    fact = executor.run(plan, factorized=True)
    assert fact.count == flat.count
    assert fact.stats.output_rows == flat.stats.output_rows == flat.count
    assert fact.stats.combos_avoided > 0
    assert fact.stats.segments_emitted > 0
    assert flat.stats.combos_avoided == 0
    assert flat.stats.segments_emitted == 0


def test_combos_avoided_is_morsel_invariant(example_db):
    """Per-row counters agree between the serial and the morsel dispatch."""
    plan = example_db.plan(_star_two())
    serial = Executor(example_db.graph).run(plan, factorized=True)
    morsel = MorselExecutor(example_db.graph, num_workers=3, backend="thread").run(
        plan, factorized=True
    )
    assert morsel.count == serial.count
    assert morsel.stats.combos_avoided == serial.stats.combos_avoided
    assert morsel.stats.output_rows == serial.stats.output_rows


# ----------------------------------------------------------------------
# cardinality arithmetic units
# ----------------------------------------------------------------------
def _prefix(rows):
    return MatchBatch({"a": np.asarray(rows, dtype=np.int64)})


def _segment(var, cards, nbrs=None):
    return FactorizedSegment(
        target_vars=(var,),
        cardinalities=np.asarray(cards, dtype=np.int64),
        nbr_ids=None if nbrs is None else np.asarray(nbrs, dtype=np.int64),
    )


class TestCardinalityArithmetic:
    def test_multi_segment_product(self):
        batch = FactorizedBatch(
            prefix=_prefix([7, 8]),
            segments=(_segment("b", [2, 3]), _segment("c", [4, 0])),
        )
        assert batch.row_counts().tolist() == [8, 0]
        assert batch.match_count() == 8
        # flat would materialize 2+3 rows after leg one, then 8+0 combos
        assert batch.flat_rows_avoided() == 13

    def test_zero_fanout_rows_contribute_nothing(self):
        batch = FactorizedBatch(
            prefix=_prefix([1, 2, 3]),
            segments=(_segment("b", [0, 5, 0]),),
        )
        assert batch.match_count() == 5
        assert batch.row_counts().tolist() == [0, 5, 0]

    def test_empty_prefix(self):
        batch = FactorizedBatch(
            prefix=_prefix([]), segments=(_segment("b", [], nbrs=[]),)
        )
        assert batch.match_count() == 0
        assert batch.flat_rows_avoided() == 0
        assert len(batch.flatten()) == 0

    def test_cardinality_length_mismatch_rejected(self):
        with pytest.raises(ExecutionError):
            FactorizedBatch(
                prefix=_prefix([1, 2]), segments=(_segment("b", [1]),)
            )

    def test_flatten_requires_materialized_segments(self):
        batch = FactorizedBatch(
            prefix=_prefix([1]), segments=(_segment("b", [2]),)
        )
        with pytest.raises(ExecutionError, match="count-only"):
            batch.flatten()

    def test_flatten_single_segment_rows(self):
        batch = FactorizedBatch(
            prefix=_prefix([5, 6]),
            segments=(_segment("b", [2, 1], nbrs=[10, 11, 12]),),
        )
        flat = batch.flatten()
        assert flat.to_dicts() == [
            {"a": 5, "b": 10},
            {"a": 5, "b": 11},
            {"a": 6, "b": 12},
        ]


def test_flatten_matches_flat_pipeline(example_db):
    """Flattening materialized single-leg segments reproduces the flat rows
    in the flat pipeline's order."""
    plan = example_db.plan(_star_two())
    executor = Executor(example_db.graph)
    flat_rows = [row for batch in executor.execute(plan) for row in batch.iter_rows()]
    fact_rows = []
    for batch in executor.execute_factorized(plan):
        while isinstance(batch, FactorizedBatch):
            batch = batch.flatten()
        fact_rows.extend(batch.iter_rows())
    assert fact_rows == flat_rows


# ----------------------------------------------------------------------
# sink behaviour: collect(limit=) early stop, run(materialize=True)
# ----------------------------------------------------------------------
def _recording_stream(batches, pulled):
    for batch in batches:
        pulled.append(batch)
        yield batch


def test_flatten_sink_stops_mid_batch():
    batches = [
        _prefix([0, 1, 2]),
        _prefix([3, 4, 5]),
        _prefix([6, 7, 8]),
    ]
    pulled = []
    sink = FlattenSink(limit=4)
    matches = sink.drain(_recording_stream(batches, pulled))
    assert [row["a"] for row in matches] == [0, 1, 2, 3]
    # the third batch is never pulled once the limit lands mid-batch two
    assert len(pulled) == 2


def test_count_sink_handles_both_stream_shapes():
    factorized = FactorizedBatch(
        prefix=_prefix([1, 2]), segments=(_segment("b", [3, 4]),)
    )
    assert CountSink().drain(iter([_prefix([1, 2, 3]), factorized])) == 10


def test_collect_limit_prefix(example_db):
    plan = example_db.plan(_one_leg())
    executor = Executor(example_db.graph, batch_size=4)
    full = executor.collect(plan)
    assert len(full) > 6
    assert executor.collect(plan, limit=5) == full[:5]
    assert executor.collect(plan, limit=0) == []
    assert executor.collect(plan, limit=len(full) + 10) == full


def test_run_materialize_count_agrees(example_db):
    plan = example_db.plan(_star_two())
    executor = Executor(example_db.graph)
    result = executor.run(plan, materialize=True)
    assert result.count == len(result.matches)
    assert result.matches == executor.collect(plan)
    assert result.stats.output_rows == result.count
