"""Batch/per-row equivalence tests for the vectorized gather path.

Randomized property tests asserting that the batched index contract
(:meth:`NestedCSR.gather`, ``list_many`` on all three index classes) agrees
with looped tuple-at-a-time lookups, and that the vectorized extension
operators produce identical rows, edge bindings and :class:`ExecutionStats`
counters to the legacy per-row path — on graphs with parallel edges and
empty adjacency lists.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database
from repro.errors import IndexLookupError
from repro.graph import Direction
from repro.graph.generators import (
    LabelledGraphSpec,
    generate_labelled_graph,
)
from repro.graph.types import EdgeAdjacencyType, OFFSET_DTYPE
from repro.index.config import IndexConfig
from repro.index.edge_partitioned import EdgePartitionedIndex
from repro.index.index_store import AccessPath, IndexStore
from repro.index.primary import PrimaryIndex
from repro.index.vertex_partitioned import VertexPartitionedIndex
from repro.index.views import OneHopView, TwoHopView
from repro.predicates import CompareOp, Predicate, cmp, prop
from repro.query.executor import Executor
from repro.query.naive import NaiveMatcher
from repro.query.operators import (
    ExecutionStats,
    ExtendIntersect,
    ExtensionLeg,
    MultiExtend,
    ScanVertices,
    SortedRangeFilter,
)
from repro.query.pattern import QueryGraph
from repro.query.plan import QueryPlan
from repro.storage.csr import NestedCSR
from repro.storage.sort_keys import SortKey


# ----------------------------------------------------------------------
# storage: gather vs group_range
# ----------------------------------------------------------------------
def _random_csr(rng, num_bound, num_entries, domains):
    bound_ids = rng.integers(0, num_bound, size=num_entries)
    level_codes = [rng.integers(0, d, size=num_entries) for d in domains]
    sort_values = [rng.integers(0, 40, size=num_entries)]
    return NestedCSR(num_bound, bound_ids, level_codes, list(domains), sort_values)


class TestGather:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_gather_matches_group_range(self, seed):
        rng = np.random.default_rng(seed)
        csr = _random_csr(rng, 30, 200, [3, 2])
        for _ in range(10):
            n = int(rng.integers(0, 15))
            bounds = rng.integers(0, 30, size=n)
            for codes in ((), (1,), (2, 1)):
                positions, counts = csr.gather(bounds, codes)
                expected_positions = []
                expected_counts = []
                for bound in bounds:
                    start, end = csr.group_range(int(bound), codes)
                    expected_positions.append(np.arange(start, end))
                    expected_counts.append(end - start)
                flat = (
                    np.concatenate(expected_positions)
                    if expected_positions
                    else np.empty(0, dtype=np.int64)
                )
                assert positions.tolist() == flat.tolist()
                assert counts.tolist() == expected_counts
                assert positions.dtype == np.int64
                assert counts.dtype == np.int64

    def test_prefix_starts_ends_generalize_bound_lookups(self):
        rng = np.random.default_rng(5)
        csr = _random_csr(rng, 20, 120, [2, 2])
        bounds = rng.integers(0, 20, size=12)
        assert csr.prefix_starts(bounds).tolist() == csr.bound_starts(bounds).tolist()
        assert csr.prefix_ends(bounds).tolist() == csr.bound_ends(bounds).tolist()
        starts = csr.prefix_starts(bounds, (1,))
        ends = csr.prefix_ends(bounds, (1,))
        for bound, start, end in zip(bounds, starts, ends):
            assert (int(start), int(end)) == csr.group_range(int(bound), (1,))

    def test_gather_validates_inputs(self):
        rng = np.random.default_rng(0)
        csr = _random_csr(rng, 10, 40, [2])
        with pytest.raises(IndexLookupError):
            csr.gather(np.array([0, 10]))
        with pytest.raises(IndexLookupError):
            csr.gather(np.array([-1]))
        with pytest.raises(IndexLookupError):
            csr.gather(np.array([0]), (5,))
        with pytest.raises(IndexLookupError):
            csr.gather(np.array([0]), (0, 0))

    def test_offsets_dtype_and_shape(self):
        rng = np.random.default_rng(1)
        csr = _random_csr(rng, 10, 40, [2])
        assert csr.offsets.dtype == OFFSET_DTYPE
        assert len(csr.offsets) == 10 * 2 + 1
        assert csr.offsets[0] == 0
        assert csr.offsets[-1] == 40


# ----------------------------------------------------------------------
# indexes: list_many vs looped list
# ----------------------------------------------------------------------
def _assert_list_many_matches(index, bounds, key_values=()):
    edge_ids, nbr_ids, counts = index.list_many(
        np.asarray(bounds, dtype=np.int64), key_values
    )
    expected_edges, expected_nbrs, expected_counts = [], [], []
    for bound in bounds:
        e, n = index.list(int(bound), key_values)
        expected_edges.extend(int(x) for x in e)
        expected_nbrs.extend(int(x) for x in n)
        expected_counts.append(len(e))
    assert edge_ids.tolist() == expected_edges
    assert nbr_ids.tolist() == expected_nbrs
    assert counts.tolist() == expected_counts


class TestListMany:
    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_primary_index(self, financial_graph, seed):
        primary = PrimaryIndex(financial_graph)
        rng = np.random.default_rng(seed)
        bounds = rng.integers(0, financial_graph.num_vertices, size=40)
        for key_values in ((), ("Wire",), ("DirDeposit",)):
            _assert_list_many_matches(primary.forward, bounds, key_values)
            _assert_list_many_matches(primary.backward, bounds, key_values)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_vertex_partitioned_index(self, financial_graph, seed):
        primary = PrimaryIndex(financial_graph)
        view = OneHopView(
            "usd", predicate=Predicate.of(cmp(prop("eadj", "currency"), "=", "USD"))
        )
        index = VertexPartitionedIndex(
            financial_graph,
            view,
            Direction.FORWARD,
            IndexConfig.default(),
            primary.forward,
        )
        rng = np.random.default_rng(seed)
        bounds = rng.integers(0, financial_graph.num_vertices, size=40)
        for key_values in ((), ("Wire",)):
            _assert_list_many_matches(index, bounds, key_values)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_edge_partitioned_index(self, financial_graph, seed):
        primary = PrimaryIndex(financial_graph)
        view = TwoHopView(
            "cheaper",
            EdgeAdjacencyType.DST_FW,
            Predicate.of(cmp(prop("eadj", "amt"), "<", prop("eb", "amt"))),
        )
        index = EdgePartitionedIndex(
            financial_graph, view, IndexConfig.default(), primary
        )
        rng = np.random.default_rng(seed)
        bounds = rng.integers(0, financial_graph.num_edges, size=40)
        for key_values in ((), ("Wire",)):
            _assert_list_many_matches(index, bounds, key_values)

    def test_empty_and_repeated_bounds(self, example_graph):
        primary = PrimaryIndex(example_graph)
        # Customer vertices (5..7) have no out-edges beyond Owns; vertex 5
        # repeated exercises repeated gathers and empty lists in one batch.
        bounds = [0, 0, 6, 7, 3, 6, 0]
        _assert_list_many_matches(primary.forward, bounds)
        _assert_list_many_matches(primary.forward, bounds, ("Wire",))
        _assert_list_many_matches(primary.forward, [])


# ----------------------------------------------------------------------
# operators: vectorized vs per-row
# ----------------------------------------------------------------------
def _run(graph, plan):
    stats = ExecutionStats()
    rows = []
    for batch in Executor(graph).execute(plan, stats=stats):
        rows.extend(batch.to_dicts())
    return rows, stats


def _assert_paths_equivalent(graph, plan_factory):
    """Build the plan twice (vectorized / per-row) and compare everything."""
    vector_rows, vector_stats = _run(graph, plan_factory(True))
    rowwise_rows, rowwise_stats = _run(graph, plan_factory(False))
    assert vector_rows == rowwise_rows
    assert vector_stats == rowwise_stats
    return vector_rows


def _forward_leg(store, bound, target, edge_var, **kwargs):
    path = store.find_vertex_access_paths(Direction.FORWARD, Predicate.true())[0]
    return ExtensionLeg(
        access_path=path,
        bound_var=bound,
        target_var=target,
        edge_var=edge_var,
        presorted_by_nbr=path.sorted_by_neighbour_id,
        **kwargs,
    )


def _two_vertex_query():
    query = QueryGraph("q")
    query.add_vertex("a")
    query.add_vertex("b")
    query.add_edge("a", "b", name="e0")
    return query


class TestExtendEquivalence:
    def test_single_leg_tracked(self, financial_graph):
        store = IndexStore(financial_graph, PrimaryIndex(financial_graph))

        def factory(vectorized):
            return QueryPlan(
                query=_two_vertex_query(),
                operators=[
                    ScanVertices(var="a"),
                    ExtendIntersect(
                        target_var="b",
                        legs=[
                            _forward_leg(store, "a", "b", "e0", track_edge=True)
                        ],
                        vectorized=vectorized,
                    ),
                ],
            )

        rows = _assert_paths_equivalent(financial_graph, factory)
        assert len(rows) == financial_graph.num_edges

    def test_single_leg_with_partition_key_values(self, financial_graph):
        store = IndexStore(financial_graph, PrimaryIndex(financial_graph))

        def factory(vectorized):
            path = store.find_vertex_access_paths(
                Direction.FORWARD, Predicate.true()
            )[0]
            path.key_values = ("Wire",)
            leg = ExtensionLeg(
                access_path=path,
                bound_var="a",
                target_var="b",
                edge_var="e0",
                track_edge=True,
                presorted_by_nbr=path.sorted_by_neighbour_id,
            )
            return QueryPlan(
                query=_two_vertex_query(),
                operators=[
                    ScanVertices(var="a"),
                    ExtendIntersect(
                        target_var="b", legs=[leg], vectorized=vectorized
                    ),
                ],
            )

        _assert_paths_equivalent(financial_graph, factory)

    def test_single_leg_with_residual_on_bound_and_new_vars(self, financial_graph):
        store = IndexStore(financial_graph, PrimaryIndex(financial_graph))
        residual = Predicate.of(
            cmp(prop("a", "ID"), "<", prop("b", "ID")),
            cmp(prop("e0", "amt"), ">", 300),
        )

        def factory(vectorized):
            return QueryPlan(
                query=_two_vertex_query(),
                operators=[
                    ScanVertices(var="a"),
                    ExtendIntersect(
                        target_var="b",
                        legs=[
                            _forward_leg(
                                store,
                                "a",
                                "b",
                                "e0",
                                track_edge=True,
                                residual=residual,
                            )
                        ],
                        vectorized=vectorized,
                    ),
                ],
            )

        _assert_paths_equivalent(financial_graph, factory)

    @pytest.mark.parametrize(
        "op,value",
        [
            (CompareOp.LT, 900),
            (CompareOp.LE, 900),
            (CompareOp.GT, 900),
            (CompareOp.GE, 900),
            (CompareOp.EQ, 4),
        ],
    )
    def test_single_leg_sorted_filter(self, financial_graph, op, value):
        date_key = SortKey.edge_property("date")
        config = IndexConfig(
            partition_keys=(), sort_keys=(date_key, SortKey.neighbour_id())
        )
        store = IndexStore(
            financial_graph, PrimaryIndex(financial_graph, config=config)
        )

        def factory(vectorized):
            return QueryPlan(
                query=_two_vertex_query(),
                operators=[
                    ScanVertices(var="a"),
                    ExtendIntersect(
                        target_var="b",
                        legs=[
                            _forward_leg(
                                store,
                                "a",
                                "b",
                                "e0",
                                track_edge=True,
                                sorted_filter=SortedRangeFilter(
                                    sort_key=date_key, op=op, value=value
                                ),
                            )
                        ],
                        vectorized=vectorized,
                    ),
                ],
            )

        _assert_paths_equivalent(financial_graph, factory)

    @pytest.mark.parametrize("graph_fixture", ["example_graph", "financial_graph"])
    def test_two_leg_intersection_with_parallel_edges(self, graph_fixture, request):
        graph = request.getfixturevalue(graph_fixture)
        store = IndexStore(graph, PrimaryIndex(graph))

        def factory(vectorized):
            query = QueryGraph("q")
            for name in ("a", "c", "b"):
                query.add_vertex(name)
            query.add_edge("a", "c", name="ec")
            query.add_edge("a", "b", name="e0")
            query.add_edge("c", "b", name="e1")
            return QueryPlan(
                query=query,
                operators=[
                    ScanVertices(var="a"),
                    ExtendIntersect(
                        target_var="c",
                        legs=[_forward_leg(store, "a", "c", "ec")],
                        vectorized=vectorized,
                    ),
                    ExtendIntersect(
                        target_var="b",
                        legs=[
                            _forward_leg(store, "a", "b", "e0", track_edge=True),
                            _forward_leg(store, "c", "b", "e1", track_edge=True),
                        ],
                        vectorized=vectorized,
                    ),
                ],
            )

        rows = _assert_paths_equivalent(graph, factory)
        for row in rows:
            assert int(graph.edge_src[row["e0"]]) == row["a"]
            assert int(graph.edge_dst[row["e0"]]) == row["b"]
            assert int(graph.edge_src[row["e1"]]) == row["c"]
            assert int(graph.edge_dst[row["e1"]]) == row["b"]

    def test_edge_partitioned_leg(self, financial_graph):
        primary = PrimaryIndex(financial_graph)
        view = TwoHopView(
            "cheaper",
            EdgeAdjacencyType.DST_FW,
            Predicate.of(cmp(prop("eadj", "amt"), "<", prop("eb", "amt"))),
        )
        edge_index = EdgePartitionedIndex(
            financial_graph, view, IndexConfig.default(), primary
        )
        store = IndexStore(financial_graph, primary)

        def factory(vectorized):
            query = QueryGraph("q")
            for name in ("a", "b", "c"):
                query.add_vertex(name)
            query.add_edge("a", "b", name="e0")
            query.add_edge("b", "c", name="e1")
            epath = AccessPath(
                index=edge_index,
                kind="edge_secondary",
                direction=Direction.FORWARD,
                key_values=(),
                sort_keys=tuple(edge_index.config.sort_keys),
                uses_bound_edge=True,
            )
            leg = ExtensionLeg(
                access_path=epath,
                bound_var="e0",
                target_var="c",
                edge_var="e1",
                track_edge=True,
            )
            return QueryPlan(
                query=query,
                operators=[
                    ScanVertices(var="a"),
                    ExtendIntersect(
                        target_var="b",
                        legs=[_forward_leg(store, "a", "b", "e0", track_edge=True)],
                        vectorized=vectorized,
                    ),
                    ExtendIntersect(
                        target_var="c", legs=[leg], vectorized=vectorized
                    ),
                ],
            )

        rows = _assert_paths_equivalent(financial_graph, factory)
        for row in rows:
            assert int(
                financial_graph.edge_property(row["e1"], "amt")
            ) < int(financial_graph.edge_property(row["e0"], "amt"))


class TestMultiExtendEquivalence:
    def _city_store(self, graph, presorted):
        city_key = SortKey.nbr_property("city")
        if presorted:
            config = IndexConfig(
                partition_keys=(), sort_keys=(city_key, SortKey.neighbour_id())
            )
        else:
            config = IndexConfig.flat()
        return IndexStore(graph, PrimaryIndex(graph, config=config)), city_key

    @pytest.mark.parametrize("presorted", [True, False])
    @pytest.mark.parametrize("shared_target", [True, False])
    def test_city_join(self, financial_graph, presorted, shared_target):
        store, city_key = self._city_store(financial_graph, presorted)
        limit = 40  # keep the per-row oracle fast

        def factory(vectorized):
            query = QueryGraph("q")
            for name in ("a", "c"):
                query.add_vertex(name)
            query.add_edge("a", "c", name="ec")
            if shared_target:
                query.add_vertex("b")
                query.add_edge("a", "b", name="e0")
                query.add_edge("c", "b", name="e1")
                targets = ("b", "b")
            else:
                query.add_vertex("b1")
                query.add_vertex("b2")
                query.add_edge("a", "b1", name="e0")
                query.add_edge("c", "b2", name="e1")
                targets = ("b1", "b2")
            legs = [
                _forward_leg(store, "a", targets[0], "e0", track_edge=True),
                _forward_leg(store, "c", targets[1], "e1", track_edge=True),
            ]
            return QueryPlan(
                query=query,
                operators=[
                    ScanVertices(
                        var="a",
                        predicate=Predicate.of(cmp(prop("a", "ID"), "<", limit)),
                    ),
                    ExtendIntersect(
                        target_var="c",
                        legs=[_forward_leg(store, "a", "c", "ec")],
                        vectorized=vectorized,
                    ),
                    MultiExtend(
                        legs=legs,
                        equality_key=city_key,
                        vectorized=vectorized,
                    ),
                ],
            )

        rows = _assert_paths_equivalent(financial_graph, factory)
        city = financial_graph.vertex_props.column("city")
        for row in rows:
            target_a = row["b"] if shared_target else row["b1"]
            target_c = row["b"] if shared_target else row["b2"]
            assert city[target_a] == city[target_c]


class TestMultiLegKernelEquivalence:
    """Randomized vectorized-vs-per-row equivalence for the kernel paths.

    Exercises the batch-wide intersection kernel through 2- and 3-leg
    ExtendIntersect and MULTI-EXTEND on random graphs with parallel edges,
    sorted-range filters (unsorted-by-neighbour legs) and rows whose
    intersection is empty.
    """

    def _random_graph(self, seed, num_vertices=40, num_edges=240):
        graph = generate_labelled_graph(
            LabelledGraphSpec(
                num_vertices=num_vertices,
                num_edges=num_edges,
                num_vertex_labels=2,
                num_edge_labels=2,
                skew=0.6,
                seed=seed,
            )
        )
        # Dense enough that parallel edges are present (they stress the
        # combination expansion of the kernel).
        pairs = graph.edge_src.astype(np.int64) * graph.num_vertices + graph.edge_dst
        assert len(np.unique(pairs)) < graph.num_edges
        return graph

    @pytest.mark.parametrize("seed", [2, 13, 31])
    def test_three_leg_intersection(self, seed):
        graph = self._random_graph(seed)
        store = IndexStore(graph, PrimaryIndex(graph))
        limit = 25

        def factory(vectorized):
            query = QueryGraph("q")
            for name in ("a", "c", "d", "b"):
                query.add_vertex(name)
            query.add_edge("a", "c", name="ec")
            query.add_edge("a", "d", name="ed")
            query.add_edge("a", "b", name="e0")
            query.add_edge("c", "b", name="e1")
            query.add_edge("d", "b", name="e2")
            return QueryPlan(
                query=query,
                operators=[
                    ScanVertices(
                        var="a",
                        predicate=Predicate.of(cmp(prop("a", "ID"), "<", limit)),
                    ),
                    ExtendIntersect(
                        target_var="c",
                        legs=[_forward_leg(store, "a", "c", "ec")],
                        vectorized=vectorized,
                    ),
                    ExtendIntersect(
                        target_var="d",
                        legs=[_forward_leg(store, "a", "d", "ed")],
                        vectorized=vectorized,
                    ),
                    ExtendIntersect(
                        target_var="b",
                        legs=[
                            _forward_leg(store, "a", "b", "e0", track_edge=True),
                            _forward_leg(store, "c", "b", "e1", track_edge=True),
                            _forward_leg(store, "d", "b", "e2", track_edge=True),
                        ],
                        vectorized=vectorized,
                    ),
                ],
            )

        rows = _assert_paths_equivalent(graph, factory)
        for row in rows:
            assert int(graph.edge_dst[row["e0"]]) == row["b"]
            assert int(graph.edge_dst[row["e1"]]) == row["b"]
            assert int(graph.edge_dst[row["e2"]]) == row["b"]

    @pytest.mark.parametrize("seed", [1, 19])
    def test_two_leg_with_sorted_filter_legs(self, financial_graph, seed):
        """Legs behind a date-sorted index (not neighbour-sorted) with a
        sorted-range filter: the kernel must segment-sort both legs."""
        date_key = SortKey.edge_property("date")
        config = IndexConfig(
            partition_keys=(), sort_keys=(date_key, SortKey.neighbour_id())
        )
        store = IndexStore(
            financial_graph, PrimaryIndex(financial_graph, config=config)
        )
        rng = np.random.default_rng(seed)
        threshold = int(rng.integers(300, 1200))
        sorted_filter = SortedRangeFilter(
            sort_key=date_key, op=CompareOp.LT, value=threshold
        )

        def factory(vectorized):
            query = QueryGraph("q")
            for name in ("a", "c", "b"):
                query.add_vertex(name)
            query.add_edge("a", "c", name="ec")
            query.add_edge("a", "b", name="e0")
            query.add_edge("c", "b", name="e1")
            return QueryPlan(
                query=query,
                operators=[
                    ScanVertices(var="a"),
                    ExtendIntersect(
                        target_var="c",
                        legs=[_forward_leg(store, "a", "c", "ec")],
                        vectorized=vectorized,
                    ),
                    ExtendIntersect(
                        target_var="b",
                        legs=[
                            _forward_leg(
                                store,
                                "a",
                                "b",
                                "e0",
                                track_edge=True,
                                sorted_filter=sorted_filter,
                            ),
                            _forward_leg(store, "c", "b", "e1", track_edge=True),
                        ],
                        vectorized=vectorized,
                    ),
                ],
            )

        rows = _assert_paths_equivalent(financial_graph, factory)
        for row in rows:
            assert int(financial_graph.edge_property(row["e0"], "date")) < threshold

    def test_two_leg_rows_with_empty_intersection(self):
        """Sparse random graph: most rows intersect to nothing."""
        graph = self._random_graph(97, num_vertices=60, num_edges=150)
        store = IndexStore(graph, PrimaryIndex(graph))

        def factory(vectorized):
            query = QueryGraph("q")
            for name in ("a", "c", "b"):
                query.add_vertex(name)
            query.add_edge("a", "c", name="ec")
            query.add_edge("a", "b", name="e0")
            query.add_edge("c", "b", name="e1")
            return QueryPlan(
                query=query,
                operators=[
                    ScanVertices(var="a"),
                    ExtendIntersect(
                        target_var="c",
                        legs=[_forward_leg(store, "a", "c", "ec")],
                        vectorized=vectorized,
                    ),
                    ExtendIntersect(
                        target_var="b",
                        legs=[
                            _forward_leg(store, "a", "b", "e0", track_edge=True),
                            _forward_leg(store, "c", "b", "e1", track_edge=True),
                        ],
                        vectorized=vectorized,
                    ),
                ],
            )

        _assert_paths_equivalent(graph, factory)

    def test_single_leg_multi_extend(self, financial_graph):
        """MULTI-EXTEND with one leg (regression: the kernel must accept it)."""
        city_key = SortKey.nbr_property("city")
        config = IndexConfig(
            partition_keys=(), sort_keys=(city_key, SortKey.neighbour_id())
        )
        store = IndexStore(
            financial_graph, PrimaryIndex(financial_graph, config=config)
        )

        def factory(vectorized):
            query = QueryGraph("q")
            query.add_vertex("a")
            query.add_vertex("b")
            query.add_edge("a", "b", name="e0")
            return QueryPlan(
                query=query,
                operators=[
                    ScanVertices(
                        var="a",
                        predicate=Predicate.of(cmp(prop("a", "ID"), "<", 30)),
                    ),
                    MultiExtend(
                        legs=[_forward_leg(store, "a", "b", "e0", track_edge=True)],
                        equality_key=city_key,
                        vectorized=vectorized,
                    ),
                ],
            )

        rows = _assert_paths_equivalent(financial_graph, factory)
        assert rows  # the plan extends every out-edge of the scanned vertices
        for row in rows:
            assert int(financial_graph.edge_src[row["e0"]]) == row["a"]
            assert int(financial_graph.edge_dst[row["e0"]]) == row["b"]

    @pytest.mark.parametrize("seed", [7, 23])
    def test_three_leg_multi_extend(self, financial_graph, seed):
        """3-leg MULTI-EXTEND city join, mixed shared/distinct targets."""
        city_key = SortKey.nbr_property("city")
        config = IndexConfig(
            partition_keys=(), sort_keys=(city_key, SortKey.neighbour_id())
        )
        store = IndexStore(
            financial_graph, PrimaryIndex(financial_graph, config=config)
        )
        rng = np.random.default_rng(seed)
        limit = int(rng.integers(8, 20))

        def factory(vectorized):
            query = QueryGraph("q")
            for name in ("a", "c"):
                query.add_vertex(name)
            query.add_edge("a", "c", name="ec")
            query.add_vertex("b")
            query.add_vertex("b2")
            query.add_edge("a", "b", name="e0")
            query.add_edge("c", "b", name="e1")
            query.add_edge("c", "b2", name="e2")
            legs = [
                _forward_leg(store, "a", "b", "e0", track_edge=True),
                _forward_leg(store, "c", "b", "e1", track_edge=True),
                _forward_leg(store, "c", "b2", "e2", track_edge=True),
            ]
            return QueryPlan(
                query=query,
                operators=[
                    ScanVertices(
                        var="a",
                        predicate=Predicate.of(cmp(prop("a", "ID"), "<", limit)),
                    ),
                    ExtendIntersect(
                        target_var="c",
                        legs=[_forward_leg(store, "a", "c", "ec")],
                        vectorized=vectorized,
                    ),
                    MultiExtend(
                        legs=legs,
                        equality_key=city_key,
                        vectorized=vectorized,
                    ),
                ],
            )

        rows = _assert_paths_equivalent(financial_graph, factory)
        city = financial_graph.vertex_props.column("city")
        for row in rows:
            assert city[row["b"]] == city[row["b2"]]


class TestJoinEntriesNaN:
    """The per-row oracle and the kernel must agree on NaN equality keys:
    NaN never joins across legs, and a NaN run expands each entry once."""

    def _op(self):
        leg = ExtensionLeg(
            access_path=None,
            bound_var="a",
            target_var="b",
            edge_var="e0",
            track_edge=True,
        )
        return MultiExtend(legs=[leg], equality_key=SortKey.nbr_property("city"))

    def test_single_leg_nan_run_expands_once(self):
        from repro.storage.intersect import intersect_segments

        edges = np.array([10, 11, 12], dtype=np.int64)
        nbrs = np.array([100, 101, 102], dtype=np.int64)
        keys = np.array([1.0, np.nan, np.nan])
        targets, edge_cols, produced = self._op()._join_entries(
            [(edges, nbrs, keys)]
        )
        assert produced == 3
        assert targets["b"].tolist() == [100, 101, 102]
        assert edge_cols["e0"].tolist() == [10, 11, 12]
        kernel = intersect_segments([keys], [np.array([3])], 1, [True])
        assert kernel.total == produced

    def test_nan_never_joins_across_legs(self):
        leg2 = ExtensionLeg(
            access_path=None,
            bound_var="c",
            target_var="b2",
            edge_var="e1",
            track_edge=True,
        )
        op = MultiExtend(
            legs=self._op().legs + [leg2],
            equality_key=SortKey.nbr_property("city"),
        )
        entries = [
            (
                np.array([10, 11], dtype=np.int64),
                np.array([100, 101], dtype=np.int64),
                np.array([1.0, np.nan]),
            ),
            (
                np.array([20, 21], dtype=np.int64),
                np.array([200, 201], dtype=np.int64),
                np.array([1.0, np.nan]),
            ),
        ]
        targets, edge_cols, produced = op._join_entries(entries)
        assert produced == 1  # only the 1.0 keys join; NaN != NaN
        assert targets["b"].tolist() == [100]
        assert targets["b2"].tolist() == [200]


class TestScanPushdown:
    """Chunked ScanVertices: label/predicate filtering inside the scan."""

    def test_chunked_scan_matches_full_materialization(
        self, financial_graph, monkeypatch
    ):
        from repro.query import operators as operators_module

        monkeypatch.setattr(operators_module, "_SCAN_CHUNK_MIN", 16)
        predicate = Predicate.of(cmp(prop("a", "ID"), "<", 70))
        plan = QueryPlan(
            query=_two_vertex_query(),
            operators=[ScanVertices(var="a", predicate=predicate)],
        )
        batch_size = 16
        stats = ExecutionStats()
        batches = list(
            Executor(financial_graph, batch_size=batch_size).execute(
                plan, stats=stats
            )
        )
        scanned = np.concatenate([batch.column("a") for batch in batches])
        expected = np.arange(70, dtype=np.int64)
        assert scanned.tolist() == expected.tolist()
        # Survivors are packed into full batches regardless of chunking.
        assert all(len(batch) == batch_size for batch in batches[:-1])
        assert 0 < len(batches[-1]) <= batch_size
        # Predicate is evaluated once per candidate, exactly as before.
        assert stats.predicate_evaluations == financial_graph.num_vertices
        assert stats.intermediate_rows == 70

    def test_chunked_scan_with_label(self, example_graph, monkeypatch):
        from repro.query import operators as operators_module

        monkeypatch.setattr(operators_module, "_SCAN_CHUNK_MIN", 2)
        plan = QueryPlan(
            query=_two_vertex_query(),
            operators=[ScanVertices(var="a", label="Account")],
        )
        batches = list(Executor(example_graph, batch_size=3).execute(plan))
        scanned = np.concatenate([batch.column("a") for batch in batches])
        assert scanned.tolist() == example_graph.vertices_with_label(
            "Account"
        ).tolist()


class TestRandomizedGraphs:
    """Vectorized stack vs per-row stack vs the naive oracle on random graphs."""

    @pytest.mark.parametrize("seed", [3, 17, 29])
    def test_two_path_matches_everything(self, seed):
        graph = generate_labelled_graph(
            LabelledGraphSpec(
                num_vertices=50,
                num_edges=220,
                num_vertex_labels=2,
                num_edge_labels=2,
                skew=0.6,
                seed=seed,
            )
        )
        store = IndexStore(graph, PrimaryIndex(graph))

        def factory(vectorized):
            query = QueryGraph("q")
            for name in ("a", "b", "c"):
                query.add_vertex(name)
            query.add_edge("a", "b", name="e0")
            query.add_edge("b", "c", name="e1")
            return QueryPlan(
                query=query,
                operators=[
                    ScanVertices(var="a"),
                    ExtendIntersect(
                        target_var="b",
                        legs=[_forward_leg(store, "a", "b", "e0", track_edge=True)],
                        vectorized=vectorized,
                    ),
                    ExtendIntersect(
                        target_var="c",
                        legs=[_forward_leg(store, "b", "c", "e1", track_edge=True)],
                        vectorized=vectorized,
                    ),
                ],
            )

        rows = _assert_paths_equivalent(graph, factory)

        query = QueryGraph("q")
        for name in ("a", "b", "c"):
            query.add_vertex(name)
        query.add_edge("a", "b", name="e0")
        query.add_edge("b", "c", name="e1")
        naive = NaiveMatcher(graph).match(query)
        key = lambda row: tuple(sorted(row.items()))
        assert sorted(map(key, rows)) == sorted(map(key, naive))

    @pytest.mark.parametrize("seed", [5, 11])
    def test_database_default_stack_matches_naive(self, seed):
        graph = generate_labelled_graph(
            LabelledGraphSpec(
                num_vertices=40,
                num_edges=160,
                num_vertex_labels=2,
                num_edge_labels=2,
                skew=0.5,
                seed=seed,
            )
        )
        db = Database(graph)
        query = QueryGraph("tri")
        for name in ("a", "b", "c"):
            query.add_vertex(name)
        query.add_edge("a", "b", name="e0")
        query.add_edge("b", "c", name="e1")
        query.add_edge("a", "c", name="e2")
        assert db.count(query) == NaiveMatcher(graph).count(query)
