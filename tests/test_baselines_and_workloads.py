"""Tests for the baseline engines, workload builders, and the workload runner."""

import pytest

from repro import Database
from repro.baselines import Neo4jLikeEngine, TigerGraphLikeEngine
from repro.errors import IndexConfigError
from repro.index.views import OneHopView
from repro.query.naive import NaiveMatcher
from repro.workloads import WorkloadRunner, fraud, labelled_subgraph, magicrecs
from repro.workloads.datasets import financial_dataset, labelled_dataset, social_dataset


class TestBaselines:
    def test_fixed_engines_answer_queries_correctly(self, labelled_graph):
        query = labelled_subgraph.build_query("SQ1", 3, 2)
        oracle = NaiveMatcher(labelled_graph).count(query)
        for engine_cls in (Neo4jLikeEngine, TigerGraphLikeEngine):
            engine = engine_cls(labelled_graph)
            assert engine.count(query) == oracle

    def test_fixed_engines_refuse_tuning(self, labelled_graph):
        engine = Neo4jLikeEngine(labelled_graph)
        with pytest.raises(IndexConfigError):
            engine.reconfigure_primary(None)
        with pytest.raises(IndexConfigError):
            engine.create_vertex_index(OneHopView("v"))
        with pytest.raises(IndexConfigError):
            engine.create_edge_index(None)

    def test_fixed_configs_differ(self):
        assert Neo4jLikeEngine.fixed_config() != TigerGraphLikeEngine.fixed_config()
        assert not Neo4jLikeEngine.fixed_config().sorted_by_neighbour_id
        assert TigerGraphLikeEngine.fixed_config().sorted_by_neighbour_id

    def test_describe(self, labelled_graph):
        engine = TigerGraphLikeEngine(labelled_graph)
        assert "tigergraph" in engine.describe()
        assert engine.memory_report().total > 0


class TestSubgraphWorkload:
    def test_query_catalog(self):
        specs = labelled_subgraph.query_specs()
        assert len(specs) == 14
        names = labelled_subgraph.query_names()
        assert "SQ14" not in names
        assert "SQ13" in names
        full = labelled_subgraph.query_names(include_sq14=True)
        assert "SQ14" in full

    def test_sq13_is_a_five_edge_path(self):
        query = labelled_subgraph.build_query("SQ13", 2, 2)
        assert query.num_vertices == 6
        assert query.num_edges == 5

    def test_labels_cycle_through_alphabets(self):
        query = labelled_subgraph.build_query("SQ4", 2, 2)
        vertex_labels = {v.label for v in query.vertices.values()}
        assert vertex_labels <= {"VL0", "VL1"}
        edge_labels = {e.label for e in query.edges.values()}
        assert edge_labels <= {"EL0", "EL1"}

    def test_without_vertex_labels(self):
        query = labelled_subgraph.build_query("SQ4", 2, 2, with_vertex_labels=False)
        assert all(v.label is None for v in query.vertices.values())

    def test_unknown_query_raises(self):
        with pytest.raises(KeyError):
            labelled_subgraph.build_query("SQ99", 2, 2)

    def test_build_workload_subset(self):
        workload = labelled_subgraph.build_workload(2, 2, names=["SQ1", "SQ4"])
        assert set(workload) == {"SQ1", "SQ4"}
        for query in workload.values():
            assert query.is_connected()


class TestMagicRecsWorkload:
    def test_threshold_matches_requested_selectivity(self, social_graph):
        alpha = magicrecs.time_threshold(social_graph, 0.05)
        times = social_graph.edge_props.column("time")
        fraction = (times < alpha).mean()
        assert abs(fraction - 0.05) < 0.02

    def test_queries_have_time_predicates(self, social_graph):
        workload = magicrecs.build_workload(social_graph)
        assert set(workload) == {"MR1", "MR2", "MR3"}
        for name, query in workload.items():
            assert query.is_connected()
            assert any(
                "time" in comparison.describe()
                for comparison in query.predicate.conjuncts()
            ), name

    def test_mr3_shape(self, social_graph):
        query = magicrecs.build_workload(social_graph)["MR3"]
        assert query.num_vertices == 5
        assert query.num_edges == 6


class TestFraudWorkload:
    def test_alpha_scales_with_selectivity(self, financial_graph):
        small = fraud.amount_alpha(financial_graph, 0.01)
        large = fraud.amount_alpha(financial_graph, 0.2)
        assert small < large

    def test_queries_built_and_connected(self, financial_graph):
        workload = fraud.build_workload(financial_graph)
        assert set(workload) == set(fraud.MF_QUERY_NAMES)
        for query in workload.values():
            assert query.is_connected()

    def test_mf5_has_money_flow_chain(self, financial_graph):
        query = fraud.build_workload(financial_graph)["MF5"]
        tracked = query.tracked_edges()
        assert {"e1", "e2", "e3", "e4"} <= tracked

    def test_views(self, financial_graph):
        view, config = fraud.vpc_view_and_config()
        assert view.is_global
        assert config.sort_keys[0].prop == "city"
        eview, econfig = fraud.epc_view_and_config(50)
        assert eview.adjacency.value == "destination-fw"
        assert len(eview.predicate.conjuncts()) == 3


class TestDatasetsAndRunner:
    def test_scaled_datasets_build(self):
        graph = labelled_dataset("brk", 2, 2, scale=0.05)
        assert graph.num_vertices > 0
        social = social_dataset("brk", scale=0.05)
        assert social.schema.has_edge_property("time")
        financial = financial_dataset("brk", scale=0.05)
        assert financial.schema.has_edge_property("amt")

    def test_workload_runner_collects_measurements(self, labelled_graph):
        db = Database(labelled_graph)
        runner = WorkloadRunner(db, "D")
        queries = labelled_subgraph.build_workload(3, 2, names=["SQ1", "SQ4"])
        measurement = runner.run(queries)
        assert measurement.config_name == "D"
        assert set(measurement.queries) == {"SQ1", "SQ4"}
        assert measurement.memory_bytes > 0
        assert measurement.total_runtime() > 0
        assert measurement.runtime("SQ1") >= 0

    def test_speedup_and_memory_ratio(self, labelled_graph):
        db = Database(labelled_graph)
        queries = labelled_subgraph.build_workload(3, 2, names=["SQ1"])
        first = WorkloadRunner(db, "A").run(queries)
        second = WorkloadRunner(db, "B").run(queries)
        ratio = second.speedup_over(first, "SQ1")
        assert ratio > 0
        assert second.memory_ratio_over(first) == pytest.approx(1.0)
