"""Cross-backend differential suite: every dispatch path is byte-identical.

The determinism contract of the backend-pluggable dispatcher: for every
query of the zoo, every seeded graph shape (uniform, Zipf-skewed, star,
empty), every backend (``serial``, ``thread``, ``process``) and every morsel
weighting (``even``, ``degree``), the produced matches, their order, and the
:class:`~repro.query.operators.ExecutionStats` are **identical** to the
serial executor's (``parallelism=1``), which itself agrees with the naive
backtracking oracle.

A small always-on subset keeps the contract pinned in tier-1; the full
randomized matrix is marked ``fuzz`` (opt-in via ``RUN_FUZZ=1``; CI runs it
nightly as advisory) because spinning up a process pool per combination is
too slow for the default suite.
"""

from __future__ import annotations

import os

import pytest

from repro import Database
from repro.graph import GraphBuilder
from repro.graph.generators import LabelledGraphSpec, generate_labelled_graph
from repro.query import MorselExecutor, QueryGraph, cmp, prop
from repro.query.executor import Executor
from repro.query.naive import NaiveMatcher

BACKEND_NAMES = ("serial", "thread", "process")
WEIGHTING_NAMES = ("even", "degree")

fuzz = pytest.mark.skipif(
    os.environ.get("RUN_FUZZ") != "1",
    reason="cross-backend fuzz matrix is opt-in; set RUN_FUZZ=1 to run",
)


# ----------------------------------------------------------------------
# seeded graph shapes
# ----------------------------------------------------------------------
def _labelled(skew: float, seed: int):
    return generate_labelled_graph(
        LabelledGraphSpec(
            num_vertices=80,
            num_edges=320,
            num_vertex_labels=2,
            num_edge_labels=2,
            skew=skew,
            seed=seed,
        )
    )


def _star_graph():
    """Two hubs and a light rim: the worst case for even vertex splits."""
    builder = GraphBuilder()
    for i in range(60):
        builder.add_vertex(f"VL{i % 2}")
    for spoke in range(1, 40):
        builder.add_edge(0, spoke, "EL0")
        builder.add_edge(spoke, 0, "EL0")
    for spoke in range(31, 59):
        builder.add_edge(30, spoke, "EL1")
    builder.add_edge(30, 0, "EL1")
    return builder.build()


def _empty_graph():
    builder = GraphBuilder()
    for _ in range(25):
        builder.add_vertex("VL0")
    return builder.build()


GRAPHS = {
    "uniform": lambda seed: _labelled(0.0, seed),
    "zipf": lambda seed: _labelled(1.0, seed),
    "star": lambda seed: _star_graph(),
    "empty": lambda seed: _empty_graph(),
}


# ----------------------------------------------------------------------
# the query zoo
# ----------------------------------------------------------------------
def _one_leg():
    query = QueryGraph("one_leg")
    query.add_vertex("a")
    query.add_vertex("b")
    query.add_edge("a", "b", name="e0")
    return query


def _triangle():
    query = QueryGraph("triangle")
    for name in ("a", "b", "c"):
        query.add_vertex(name)
    query.add_edge("a", "b", name="e0")
    query.add_edge("a", "c", name="e1")
    query.add_edge("b", "c", name="e2")
    return query


def _three_leg_clique():
    query = QueryGraph("clique")
    for name in ("a", "b", "c", "d"):
        query.add_vertex(name)
    query.add_edge("a", "b", name="e0")
    query.add_edge("a", "c", name="e1")
    query.add_edge("b", "c", name="e2")
    query.add_edge("a", "d", name="e3")
    query.add_edge("b", "d", name="e4")
    query.add_edge("c", "d", name="e5")
    return query


def _predicated():
    query = QueryGraph("predicated")
    query.add_vertex("a")
    query.add_vertex("b")
    query.add_edge("a", "b", name="e0")
    query.add_predicate(cmp(prop("a", "ID"), "<", 40))
    return query


ZOO = {
    "one_leg": _one_leg,
    "triangle": _triangle,
    "three_leg_clique": _three_leg_clique,
    "predicated": _predicated,
}


# ----------------------------------------------------------------------
# cached builds: graph -> db/plan/serial baseline (pools are the slow part)
# ----------------------------------------------------------------------
_CACHE = {}


def _stats_dict(stats):
    return {
        "lists_accessed": stats.lists_accessed,
        "list_entries_fetched": stats.list_entries_fetched,
        "intermediate_rows": stats.intermediate_rows,
        "output_rows": stats.output_rows,
        "predicate_evaluations": stats.predicate_evaluations,
    }


def _baseline(graph_key: str, seed: int, shape: str):
    key = (graph_key, seed, shape)
    if key not in _CACHE:
        graph_cache_key = ("graph", graph_key, seed)
        if graph_cache_key not in _CACHE:
            graph = GRAPHS[graph_key](seed)
            _CACHE[graph_cache_key] = (graph, Database(graph))
        graph, db = _CACHE[graph_cache_key]
        plan = db.plan(ZOO[shape]())
        serial = Executor(db.graph, batch_size=db.batch_size).run(
            plan, materialize=True
        )
        oracle = NaiveMatcher(graph).count(ZOO[shape]())
        assert serial.count == oracle, (
            f"serial executor disagrees with the naive oracle on "
            f"{graph_key}/{shape}"
        )
        _CACHE[key] = (db, plan, serial)
    return _CACHE[key]


def check_combo(
    graph_key: str,
    seed: int,
    shape: str,
    backend: str,
    weighting: str,
    num_workers: int = 2,
    morsel_size=None,
):
    db, plan, serial = _baseline(graph_key, seed, shape)
    executor = MorselExecutor(
        db.graph,
        batch_size=db.batch_size,
        num_workers=num_workers,
        morsel_size=morsel_size,
        backend=backend,
        weighting=weighting,
    )
    result = executor.run(plan, materialize=True)
    context = f"{graph_key}/seed{seed}/{shape}/{backend}/{weighting}"
    assert result.count == serial.count, context
    assert result.matches == serial.matches, context
    assert _stats_dict(result.stats) == _stats_dict(serial.stats), context


# ----------------------------------------------------------------------
# tier-1 smoke subset: full backend × weighting matrix on two graph shapes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("weighting", WEIGHTING_NAMES)
@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("graph_key", ["zipf", "star"])
def test_smoke_matrix_triangle(graph_key, backend, weighting):
    check_combo(graph_key, 3, "triangle", backend, weighting)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_smoke_empty_graph(backend):
    check_combo("empty", 3, "one_leg", backend, "degree")


def test_smoke_single_vertex_morsels_process_backend():
    check_combo("star", 3, "one_leg", "process", "even", morsel_size=1)


# ----------------------------------------------------------------------
# the full fuzz matrix (nightly / RUN_FUZZ=1)
# ----------------------------------------------------------------------
@fuzz
@pytest.mark.fuzz
@pytest.mark.parametrize("weighting", WEIGHTING_NAMES)
@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("shape", sorted(ZOO))
@pytest.mark.parametrize(
    "graph_key,seed",
    [
        ("uniform", 3),
        ("uniform", 17),
        ("zipf", 3),
        ("zipf", 17),
        ("zipf", 92),
        ("star", 0),
        ("empty", 0),
    ],
)
def test_fuzz_matrix(graph_key, seed, shape, backend, weighting):
    check_combo(graph_key, seed, shape, backend, weighting)


@fuzz
@pytest.mark.fuzz
@pytest.mark.parametrize("morsel_size", [1, 7, 1000])
@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_fuzz_morsel_boundaries(backend, morsel_size):
    check_combo("zipf", 17, "triangle", backend, "even", morsel_size=morsel_size)
    check_combo(
        "star", 0, "three_leg_clique", backend, "degree", morsel_size=morsel_size
    )


@fuzz
@pytest.mark.fuzz
def test_fuzz_four_workers_match_two(
):
    for backend in BACKEND_NAMES:
        check_combo("zipf", 92, "triangle", backend, "degree", num_workers=4)
