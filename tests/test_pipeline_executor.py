"""Differential suite for the physical pipeline executor.

Pins the compiled pipeline (:mod:`repro.query.pipeline`) against the
pre-pipeline generator chain, kept verbatim as
:func:`~repro.query.pipeline.run_pipeline_legacy` — the flat oracle:

* **byte-identity** — matches, their order, and the work-counter stats are
  identical to the legacy executor across the query zoo × graph shapes ×
  serial/thread/process backends (smoke subset in tier-1, the full matrix
  behind the ``fuzz`` marker);
* **early termination** — ``collect(limit=)`` halts the pipeline across
  batches *and* across morsels: strictly fewer morsels dispatched than the
  unlimited run (``ExecutionStats.morsels_dispatched``) while the returned
  prefix is byte-identical to the unlimited run's first N matches;
* **per-stage observability** — timings present for every pipeline stage
  on every backend (surviving the process workers' columnar stats
  transport), exact attribution under a fake clock, and exclusion from the
  byte-identity contract;
* **regression** — the pre-refactor dispatcher refilled its window before
  yielding, so a satisfied limit kept dispatching morsels; the fixed
  top-up-after-consumption behaviour is pinned with a backend that counts
  submissions.
"""

from __future__ import annotations

import os

import pytest

from repro import Database
from repro.graph import GraphBuilder
from repro.graph.generators import LabelledGraphSpec, generate_labelled_graph
from repro.query import MorselExecutor, QueryGraph, cmp, prop
from repro.query.backends import SerialBackend
from repro.query.executor import Executor
from repro.query.operators import ExecutionContext, ExecutionStats
from repro.query.pipeline import (
    CountSink,
    ExistsSink,
    FlattenSink,
    LimitSink,
    PipelineBuilder,
    run_pipeline_legacy,
)

BACKEND_NAMES = ("serial", "thread", "process")

fuzz = pytest.mark.skipif(
    os.environ.get("RUN_FUZZ") != "1",
    reason="pipeline differential fuzz matrix is opt-in; set RUN_FUZZ=1 to run",
)


# ----------------------------------------------------------------------
# seeded graph shapes (the cross-backend suite's zoo, shared shape-for-shape)
# ----------------------------------------------------------------------
def _labelled(skew: float, seed: int):
    return generate_labelled_graph(
        LabelledGraphSpec(
            num_vertices=80,
            num_edges=320,
            num_vertex_labels=2,
            num_edge_labels=2,
            skew=skew,
            seed=seed,
        )
    )


def _star_graph():
    builder = GraphBuilder()
    for i in range(60):
        builder.add_vertex(f"VL{i % 2}")
    for spoke in range(1, 40):
        builder.add_edge(0, spoke, "EL0")
        builder.add_edge(spoke, 0, "EL0")
    for spoke in range(31, 59):
        builder.add_edge(30, spoke, "EL1")
    builder.add_edge(30, 0, "EL1")
    return builder.build()


def _empty_graph():
    builder = GraphBuilder()
    for _ in range(25):
        builder.add_vertex("VL0")
    return builder.build()


GRAPHS = {
    "uniform": lambda seed: _labelled(0.0, seed),
    "zipf": lambda seed: _labelled(1.0, seed),
    "star": lambda seed: _star_graph(),
    "empty": lambda seed: _empty_graph(),
}


# ----------------------------------------------------------------------
# the query zoo
# ----------------------------------------------------------------------
def _one_leg():
    query = QueryGraph("one_leg")
    query.add_vertex("a")
    query.add_vertex("b")
    query.add_edge("a", "b", name="e0")
    return query


def _triangle():
    query = QueryGraph("triangle")
    for name in ("a", "b", "c"):
        query.add_vertex(name)
    query.add_edge("a", "b", name="e0")
    query.add_edge("a", "c", name="e1")
    query.add_edge("b", "c", name="e2")
    return query


def _three_leg_clique():
    query = QueryGraph("clique")
    for name in ("a", "b", "c", "d"):
        query.add_vertex(name)
    query.add_edge("a", "b", name="e0")
    query.add_edge("a", "c", name="e1")
    query.add_edge("b", "c", name="e2")
    query.add_edge("a", "d", name="e3")
    query.add_edge("b", "d", name="e4")
    query.add_edge("c", "d", name="e5")
    return query


def _predicated():
    query = QueryGraph("predicated")
    query.add_vertex("a")
    query.add_vertex("b")
    query.add_edge("a", "b", name="e0")
    query.add_predicate(cmp(prop("a", "ID"), "<", 40))
    return query


ZOO = {
    "one_leg": _one_leg,
    "triangle": _triangle,
    "three_leg_clique": _three_leg_clique,
    "predicated": _predicated,
}


class FakeClock:
    """Deterministic monotonic clock: every call advances one tick."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def _work_counters(stats):
    return {
        "lists_accessed": stats.lists_accessed,
        "list_entries_fetched": stats.list_entries_fetched,
        "intermediate_rows": stats.intermediate_rows,
        "output_rows": stats.output_rows,
        "predicate_evaluations": stats.predicate_evaluations,
    }


# ----------------------------------------------------------------------
# cached builds: (graph_key, seed, shape) -> db/plan/legacy-oracle baseline
# ----------------------------------------------------------------------
_CACHE = {}


def _legacy_oracle(db, plan):
    """Matches + stats of the kept pre-pipeline generator chain."""
    stats = ExecutionStats()
    context = ExecutionContext(
        graph=db.graph,
        query=plan.query,
        batch_size=db.batch_size,
        stats=stats,
    )
    matches = [
        row
        for batch in run_pipeline_legacy(plan, context)
        for row in batch.to_dicts()
    ]
    return matches, stats


def _baseline(graph_key: str, seed: int, shape: str):
    key = (graph_key, seed, shape)
    if key not in _CACHE:
        graph_cache_key = ("graph", graph_key, seed)
        if graph_cache_key not in _CACHE:
            _CACHE[graph_cache_key] = Database(GRAPHS[graph_key](seed))
        db = _CACHE[graph_cache_key]
        plan = db.plan(ZOO[shape]())
        _CACHE[key] = (db, plan, _legacy_oracle(db, plan))
    return _CACHE[key]


def check_pipeline_combo(
    graph_key: str,
    seed: int,
    shape: str,
    backend: str,
    num_workers: int = 2,
    morsel_size=None,
):
    """Pipeline ≡ legacy: matches, order, work-counter stats — plus timings."""
    db, plan, (matches, legacy_stats) = _baseline(graph_key, seed, shape)
    context = f"{graph_key}/seed{seed}/{shape}/{backend}"
    labels = PipelineBuilder(plan).build().labels

    serial_stats = ExecutionStats()
    serial = FlattenSink().drain(
        Executor(db.graph, batch_size=db.batch_size).execute(
            plan, stats=serial_stats
        )
    )
    assert serial == matches, context
    assert serial_stats == legacy_stats, context

    executor = MorselExecutor(
        db.graph,
        batch_size=db.batch_size,
        num_workers=num_workers,
        morsel_size=morsel_size,
        backend=backend,
    )
    stats = ExecutionStats()
    result = FlattenSink().drain(executor.execute(plan, stats=stats))
    assert result == matches, context
    assert stats == legacy_stats, context
    assert _work_counters(stats) == _work_counters(legacy_stats), context
    # Per-operator timings reported on every backend, for every stage.
    for observed in (serial_stats, stats):
        assert set(labels) <= set(observed.operator_seconds), context
        assert set(labels) <= set(observed.operator_batches), context
        assert all(v >= 0.0 for v in observed.operator_seconds.values()), context
    assert stats.morsels_dispatched == len(executor.morsel_ranges(plan)), context


# ----------------------------------------------------------------------
# tier-1 smoke subset of the differential matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("graph_key", ["zipf", "star"])
def test_smoke_pipeline_matches_legacy_triangle(graph_key, backend):
    check_pipeline_combo(graph_key, 3, "triangle", backend)


@pytest.mark.parametrize("backend", ("serial", "thread"))
def test_smoke_pipeline_matches_legacy_empty(backend):
    check_pipeline_combo("empty", 3, "one_leg", backend)


def test_smoke_pipeline_predicated_uniform():
    check_pipeline_combo("uniform", 3, "predicated", "serial")


# ----------------------------------------------------------------------
# the full fuzz matrix (nightly / RUN_FUZZ=1)
# ----------------------------------------------------------------------
@fuzz
@pytest.mark.fuzz
@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("shape", sorted(ZOO))
@pytest.mark.parametrize(
    "graph_key,seed",
    [
        ("uniform", 3),
        ("uniform", 17),
        ("zipf", 3),
        ("zipf", 17),
        ("zipf", 92),
        ("star", 0),
        ("empty", 0),
    ],
)
def test_fuzz_pipeline_matrix(graph_key, seed, shape, backend):
    check_pipeline_combo(graph_key, seed, shape, backend)


@fuzz
@pytest.mark.fuzz
@pytest.mark.parametrize("morsel_size", [1, 7, 1000])
@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_fuzz_pipeline_morsel_boundaries(backend, morsel_size):
    check_pipeline_combo("zipf", 17, "triangle", backend, morsel_size=morsel_size)
    check_pipeline_combo(
        "star", 0, "three_leg_clique", backend, morsel_size=morsel_size
    )


# ----------------------------------------------------------------------
# early termination: collect(limit=) short-circuits across morsels
# ----------------------------------------------------------------------
def _limit_executor(db, backend, morsel_size=4, num_workers=2, **kwargs):
    return MorselExecutor(
        db.graph,
        batch_size=db.batch_size,
        num_workers=num_workers,
        morsel_size=morsel_size,
        backend=backend,
        **kwargs,
    )


def check_early_termination(backend: str, limit: int, morsel_size: int = 4):
    """The acceptance contract on a full-domain triangle (2-leg) scan."""
    db, plan, (matches, _) = _baseline("uniform", 3, "triangle")
    executor = _limit_executor(db, backend, morsel_size=morsel_size)
    total_morsels = len(executor.morsel_ranges(plan))

    unlimited_stats = ExecutionStats()
    unlimited = executor.collect(plan, stats=unlimited_stats)
    assert unlimited == matches
    assert unlimited_stats.morsels_dispatched == total_morsels

    limited_stats = ExecutionStats()
    limited = executor.collect(plan, limit=limit, stats=limited_stats)
    context = f"{backend}/limit={limit}"
    # Byte-identical first-N prefix...
    assert limited == matches[:limit], context
    # ...from strictly fewer dispatched morsels than the full-domain run.
    assert 0 < limited_stats.morsels_dispatched < total_morsels, (
        context,
        limited_stats.morsels_dispatched,
        total_morsels,
    )


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_limit_dispatches_fewer_morsels_all_backends(backend):
    check_early_termination(backend, limit=5)


@pytest.mark.parametrize("backend", ("thread", "process"))
def test_limit_hit_mid_batch(backend):
    # batch_size 1024 >> total matches: a small limit always lands strictly
    # inside the first emitted batch of some morsel.
    db, plan, (matches, _) = _baseline("uniform", 3, "triangle")
    assert len(matches) > 7
    executor = _limit_executor(db, backend)
    stats = ExecutionStats()
    limited = executor.collect(plan, limit=7, stats=stats)
    assert limited == matches[:7]
    assert stats.morsels_dispatched < len(executor.morsel_ranges(plan))


@pytest.mark.parametrize("backend", ("thread", "process"))
def test_limit_hit_mid_morsel(backend):
    # Single-vertex morsels: the limit is satisfied partway through the
    # morsel list, long before the domain is exhausted.
    check_early_termination(backend, limit=3, morsel_size=1)


@pytest.mark.parametrize("backend", ("thread", "process"))
def test_limit_hit_before_last_morsel(backend):
    # A mid-domain limit: satisfied around half the matches, far enough
    # from the tail that the in-flight window cannot have covered it.
    db, plan, (matches, _) = _baseline("uniform", 3, "triangle")
    check_early_termination(backend, limit=len(matches) // 2, morsel_size=2)


def test_exists_short_circuits_morsels():
    db, plan, (matches, _) = _baseline("uniform", 3, "triangle")
    executor = _limit_executor(db, "thread", morsel_size=1)
    stats = ExecutionStats()
    assert executor.exists(plan, stats=stats) is True
    assert 0 < stats.morsels_dispatched < len(executor.morsel_ranges(plan))

    empty_db, empty_plan, (empty_matches, _) = _baseline("empty", 3, "one_leg")
    assert empty_matches == []
    assert Executor(empty_db.graph).exists(empty_plan) is False


def test_database_collect_limit_prefix_on_all_backends():
    db, plan, (matches, _) = _baseline("uniform", 3, "triangle")
    for backend in BACKEND_NAMES:
        got = db.collect(plan, limit=9, parallelism=2, backend=backend)
        assert got == matches[:9], backend
    assert db.collect(plan, limit=0) == []
    assert db.collect(plan) == matches
    assert db.exists(plan) is True


# ----------------------------------------------------------------------
# regression: the pre-refactor dispatcher refilled past a satisfied limit
# ----------------------------------------------------------------------
class CountingSerialBackend(SerialBackend):
    """Serial backend that records every submission it receives."""

    def __init__(self) -> None:
        self.submissions = []

    def submit(self, start, stop, index=0, attempt=0):
        self.submissions.append((index, attempt))
        return super().submit(start, stop, index=index, attempt=attempt)


def test_regression_limit_stops_dispatching_morsels():
    """Fails on the pre-refactor executor.

    The old dispatcher topped up its window *before* yielding a consumed
    morsel's batches, so a limit satisfied by the very first morsel still
    submitted one morsel beyond the initial window (window + 1).  The
    pipeline dispatcher tops up only after consumption: with the limit
    satisfied in morsel 0, exactly the initial window is ever submitted.
    """
    db, plan, (matches, _) = _baseline("uniform", 3, "triangle")
    backend = CountingSerialBackend()
    executor = MorselExecutor(
        db.graph,
        batch_size=db.batch_size,
        num_workers=2,
        morsel_size=1,
        backend=backend,
    )
    total_morsels = len(executor.morsel_ranges(plan))
    window = executor.num_workers * 2  # MORSEL_WINDOW_PER_WORKER
    assert total_morsels > window + 1

    stats = ExecutionStats()
    limited = executor.collect(plan, limit=1, stats=stats)
    assert limited == matches[:1]
    # The first morsel (vertex 0) satisfies limit=1 on this graph; the
    # pre-refactor refill-before-yield would have submitted window + 1.
    assert len(backend.submissions) <= window
    assert len(backend.submissions) < total_morsels
    assert stats.morsels_dispatched == len(backend.submissions)


def test_unlimited_run_still_dispatches_every_morsel():
    db, plan, (matches, _) = _baseline("uniform", 3, "triangle")
    backend = CountingSerialBackend()
    executor = MorselExecutor(
        db.graph,
        batch_size=db.batch_size,
        num_workers=2,
        morsel_size=4,
        backend=backend,
    )
    stats = ExecutionStats()
    assert executor.collect(plan, stats=stats) == matches
    total_morsels = len(executor.morsel_ranges(plan))
    assert len(backend.submissions) == total_morsels
    assert stats.morsels_dispatched == total_morsels


# ----------------------------------------------------------------------
# per-operator timing: fake-clock exactness, transport, identity exclusion
# ----------------------------------------------------------------------
def test_fake_clock_serial_timings_present_and_bounded():
    db, plan, _ = _baseline("uniform", 3, "triangle")
    labels = PipelineBuilder(plan).build().labels
    clock = FakeClock()
    stats = ExecutionStats()
    executor = Executor(db.graph, batch_size=db.batch_size, clock=clock)
    before = clock.now
    count = CountSink().drain(executor.execute(plan, stats=stats))
    elapsed = clock.now - before
    assert count == stats.output_rows
    # Timings present for every pipeline stage...
    assert set(stats.operator_seconds) == set(labels)
    assert set(stats.operator_batches) == set(labels)
    # ...positive wherever the fake clock ticked through the stage...
    assert all(v > 0 for v in stats.operator_seconds.values())
    assert stats.operator_batches["0:scan"] >= 1
    # ...and exclusive attribution sums to no more than the total drive time.
    assert 0 < stats.pipeline_seconds() <= elapsed


def test_fake_clock_morsel_dispatch_merges_stage_times():
    # The serial backend runs morsel bodies inline, so a fake clock threads
    # through MorselExecutor(clock=...) deterministically; per-stage times
    # merge key-wise across morsels.
    db, plan, _ = _baseline("uniform", 3, "triangle")
    labels = PipelineBuilder(plan).build().labels
    clock = FakeClock()
    executor = MorselExecutor(
        db.graph,
        batch_size=db.batch_size,
        num_workers=2,
        morsel_size=8,
        backend="serial",
        clock=clock,
    )
    stats = ExecutionStats()
    before = clock.now
    result = FlattenSink().drain(executor.execute(plan, stats=stats))
    elapsed = clock.now - before
    assert len(result) == stats.output_rows
    assert set(stats.operator_seconds) == set(labels)
    assert all(v > 0 for v in stats.operator_seconds.values())
    assert stats.pipeline_seconds() <= elapsed
    # Scan batches: at least one per non-empty morsel, merged additively.
    assert stats.operator_batches["0:scan"] >= stats.morsels_dispatched


def test_timings_survive_process_columnar_transport():
    db, plan, _ = _baseline("uniform", 3, "triangle")
    labels = PipelineBuilder(plan).build().labels
    executor = MorselExecutor(
        db.graph, batch_size=db.batch_size, num_workers=2, backend="process"
    )
    stats = ExecutionStats()
    count = CountSink().drain(executor.execute(plan, stats=stats))
    assert count == stats.output_rows
    # The workers' per-stage times crossed the checksummed columnar reply
    # envelope and merged in the parent.
    assert set(labels) <= set(stats.operator_seconds)
    assert stats.pipeline_seconds() > 0
    assert sum(stats.operator_batches.values()) > 0


def test_timing_fields_are_excluded_from_stats_equality():
    left = ExecutionStats(output_rows=10)
    right = ExecutionStats(output_rows=10)
    right.record_stage("0:scan", 123.0, 4)
    right.morsels_dispatched = 99
    assert left == right  # observability fields are compare=False
    right.output_rows = 11
    assert left != right


def test_factorized_pipeline_times_suffix_stages():
    db, plan, _ = _baseline("uniform", 3, "triangle")
    if not plan.supports_factorized_count:
        pytest.skip("triangle plan has no factorizable suffix on this build")
    clock = FakeClock()
    stats = ExecutionStats()
    executor = Executor(db.graph, batch_size=db.batch_size, clock=clock)
    count = CountSink().drain(executor.execute_factorized(plan, stats=stats))
    flat = ExecutionStats()
    flat_count = CountSink().drain(
        Executor(db.graph, batch_size=db.batch_size).execute(plan, stats=flat)
    )
    assert count == flat_count
    factorized_labels = PipelineBuilder(plan).build(factorized=True).labels
    assert set(stats.operator_seconds) == set(factorized_labels)
    assert all(v > 0 for v in stats.operator_seconds.values())


# ----------------------------------------------------------------------
# pipeline surface: builder, describe, sinks
# ----------------------------------------------------------------------
def test_pipeline_builder_labels_and_describe():
    db, plan, _ = _baseline("uniform", 3, "triangle")
    pipeline = PipelineBuilder(plan).build()
    assert pipeline.labels[0] == "0:scan"
    assert len(pipeline.labels) == len(plan.operators)
    description = pipeline.describe()
    assert description.startswith("0:scan")
    assert "1:" in description


def test_sinks_halt_contract():
    db, plan, _ = _baseline("uniform", 3, "triangle")
    executor = Executor(db.graph, batch_size=db.batch_size)

    limit = LimitSink(4)
    assert not limit.satisfied
    got = limit.drain(executor.execute(plan))
    assert len(got) == 4
    assert limit.satisfied

    exists = ExistsSink()
    assert exists.drain(executor.execute(plan)) is True
    assert exists.satisfied

    count = CountSink()
    total = count.drain(executor.execute(plan))
    assert total == len(FlattenSink().drain(executor.execute(plan)))
