"""Tests for the nested CSR container, including hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexLookupError
from repro.graph.types import CSR_OFFSET_BYTES
from repro.storage.csr import NestedCSR


def build_csr(num_bound, bound_ids, codes=(), domains=(), sort_values=()):
    return NestedCSR(
        num_bound=num_bound,
        bound_ids=np.asarray(bound_ids, dtype=np.int64),
        level_codes=[np.asarray(c, dtype=np.int64) for c in codes],
        level_domains=list(domains),
        sort_values=[np.asarray(v) for v in sort_values],
    )


class TestNestedCSRBasics:
    def test_level0_partitioning(self):
        csr = build_csr(3, [0, 1, 1, 2, 2, 2])
        assert csr.bound_range(0) == (0, 1)
        assert csr.bound_range(1) == (1, 3)
        assert csr.bound_range(2) == (3, 6)
        assert csr.num_entries == 6

    def test_empty_bound_ranges(self):
        csr = build_csr(4, [1, 1])
        assert csr.bound_range(0) == (0, 0)
        assert csr.bound_range(3) == (2, 2)
        assert list(csr.nonempty_bounds()) == [1]

    def test_nested_level_partitioning(self):
        # Two bound elements, one level with domain 2.
        bound = [0, 0, 0, 1, 1]
        codes = [[1, 0, 1, 0, 1]]
        csr = build_csr(2, bound, codes, [2])
        start, end = csr.group_range(0, [0])
        assert end - start == 1
        start, end = csr.group_range(0, [1])
        assert end - start == 2
        # Prefix lookup unions the sub-partitions.
        assert csr.group_range(0) == (0, 3)

    def test_sort_order_within_groups(self):
        bound = [0, 0, 0, 0]
        sort_vals = [[5, 1, 3, 2]]
        csr = build_csr(1, bound, sort_values=sort_vals)
        ordered = np.asarray(sort_vals[0])[csr.order]
        assert list(ordered) == sorted(sort_vals[0])

    def test_out_of_range_lookups_raise(self):
        csr = build_csr(2, [0, 1], [[0, 1]], [2])
        with pytest.raises(IndexLookupError):
            csr.bound_range(5)
        with pytest.raises(IndexLookupError):
            csr.group_range(0, [7])
        with pytest.raises(IndexLookupError):
            csr.group_range(0, [0, 0])

    def test_bound_starts_vectorized(self):
        csr = build_csr(3, [0, 1, 1, 2], [[0, 1, 0, 1]], [2])
        starts = csr.bound_starts(np.array([0, 1, 2]))
        ends = csr.bound_ends(np.array([0, 1, 2]))
        assert list(starts) == [0, 1, 3]
        assert list(ends) == [1, 3, 4]

    def test_level_bytes_accounting(self):
        csr = build_csr(4, [0, 1, 2, 3], [[0, 1, 0, 1]], [2])
        # level 0: 4 groups, level 1: 8 groups.
        assert csr.nbytes_levels() == (4 + 8) * CSR_OFFSET_BYTES

    def test_mismatched_levels_raise(self):
        with pytest.raises(IndexLookupError):
            build_csr(2, [0, 1], [[0, 1]], [])

    def test_empty_csr(self):
        csr = build_csr(3, [])
        assert csr.num_entries == 0
        assert csr.bound_range(1) == (0, 0)


@st.composite
def csr_inputs(draw):
    num_bound = draw(st.integers(min_value=1, max_value=8))
    num_entries = draw(st.integers(min_value=0, max_value=60))
    bound_ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_bound - 1),
            min_size=num_entries,
            max_size=num_entries,
        )
    )
    domain = draw(st.integers(min_value=1, max_value=4))
    codes = draw(
        st.lists(
            st.integers(min_value=0, max_value=domain - 1),
            min_size=num_entries,
            max_size=num_entries,
        )
    )
    sort_values = draw(
        st.lists(
            st.integers(min_value=-100, max_value=100),
            min_size=num_entries,
            max_size=num_entries,
        )
    )
    return num_bound, bound_ids, codes, domain, sort_values


class TestNestedCSRProperties:
    @settings(max_examples=60, deadline=None)
    @given(csr_inputs())
    def test_groups_partition_all_entries(self, inputs):
        """Every entry lands in exactly one most-granular group."""
        num_bound, bound_ids, codes, domain, sort_values = inputs
        csr = build_csr(num_bound, bound_ids, [codes], [domain], [sort_values])
        total = 0
        for bound in range(num_bound):
            for code in range(domain):
                start, end = csr.group_range(bound, [code])
                assert end >= start
                total += end - start
        assert total == len(bound_ids)

    @settings(max_examples=60, deadline=None)
    @given(csr_inputs())
    def test_group_contents_match_bruteforce(self, inputs):
        """The permuted entries of each group equal a brute-force filter."""
        num_bound, bound_ids, codes, domain, sort_values = inputs
        csr = build_csr(num_bound, bound_ids, [codes], [domain], [sort_values])
        bound_arr = np.asarray(bound_ids)
        code_arr = np.asarray(codes)
        for bound in range(num_bound):
            for code in range(domain):
                start, end = csr.group_range(bound, [code])
                entries = set(csr.order[start:end].tolist())
                expected = set(
                    np.nonzero((bound_arr == bound) & (code_arr == code))[0].tolist()
                )
                assert entries == expected

    @settings(max_examples=60, deadline=None)
    @given(csr_inputs())
    def test_sort_values_nondecreasing_within_groups(self, inputs):
        num_bound, bound_ids, codes, domain, sort_values = inputs
        csr = build_csr(num_bound, bound_ids, [codes], [domain], [sort_values])
        values = np.asarray(sort_values)
        for bound in range(num_bound):
            for code in range(domain):
                start, end = csr.group_range(bound, [code])
                group_values = values[csr.order[start:end]]
                assert list(group_values) == sorted(group_values)
