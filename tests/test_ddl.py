"""Tests for the index DDL parser and its application through the Database."""

import pytest

from repro import Database
from repro.errors import DDLParseError
from repro.graph import Direction, EdgeAdjacencyType
from repro.index.ddl import (
    CreateOneHopCommand,
    CreateTwoHopCommand,
    ReconfigurePrimaryCommand,
    parse_comparison,
    parse_ddl,
    parse_where,
)
from repro.predicates import CompareOp, Constant, PropertyRef
from repro.storage.partition_keys import PartitionKey
from repro.storage.sort_keys import SortKey


class TestWhereParsing:
    def test_parse_comparison_with_constant(self):
        comparison = parse_comparison("eadj.amt > 10000")
        assert comparison.left == PropertyRef("eadj", "amt")
        assert comparison.op is CompareOp.GT
        assert comparison.right == Constant(10000)

    def test_parse_comparison_with_reference(self):
        comparison = parse_comparison("eb.date < eadj.date")
        assert comparison.right == PropertyRef("eadj", "date")

    def test_parse_comparison_with_string(self):
        comparison = parse_comparison("eadj.currency = USD")
        assert comparison.right == Constant("USD")
        quoted = parse_comparison("eadj.currency = 'USD'")
        assert quoted.right == Constant("USD")

    def test_parse_float(self):
        comparison = parse_comparison("eadj.amt >= 10.5")
        assert comparison.right == Constant(10.5)

    def test_malformed_comparison_raises(self):
        with pytest.raises(DDLParseError):
            parse_comparison("not a comparison")

    def test_parse_where_conjunction(self):
        predicate = parse_where("eadj.currency=USD, eadj.amt>10000")
        assert len(predicate.conjuncts()) == 2
        predicate = parse_where("eadj.currency=USD AND eadj.amt>10000")
        assert len(predicate.conjuncts()) == 2
        assert parse_where("").is_true


class TestReconfigureParsing:
    def test_paper_example(self):
        command = parse_ddl(
            "RECONFIGURE PRIMARY INDEXES "
            "PARTITION BY eadj.label, eadj.currency "
            "SORT BY vnbr.city"
        )
        assert isinstance(command, ReconfigurePrimaryCommand)
        assert command.config.partition_keys == (
            PartitionKey.edge_label(),
            PartitionKey.edge_property("currency"),
        )
        assert command.config.sort_keys == (SortKey.nbr_property("city"),)

    def test_sort_defaults_to_neighbour_id(self):
        command = parse_ddl("RECONFIGURE PRIMARY INDEXES PARTITION BY eadj.label")
        assert command.config.sort_keys == (SortKey.neighbour_id(),)


class TestCreateOneHopParsing:
    def test_paper_example(self):
        command = parse_ddl(
            "CREATE 1-HOP VIEW LargeUSDTrnx "
            "MATCH vs-[eadj]->vd "
            "WHERE eadj.currency=USD, eadj.amt>10000 "
            "INDEX AS FW-BW "
            "PARTITION BY eadj.label SORT BY vnbr.ID"
        )
        assert isinstance(command, CreateOneHopCommand)
        assert command.view.name == "LargeUSDTrnx"
        assert len(command.view.predicate.conjuncts()) == 2
        assert command.directions == (Direction.FORWARD, Direction.BACKWARD)
        assert command.config.partition_keys == (PartitionKey.edge_label(),)
        assert command.config.sort_keys == (SortKey.neighbour_id(),)

    def test_edge_label_in_match(self):
        command = parse_ddl(
            "CREATE 1-HOP VIEW Wires MATCH vs-[eadj:Wire]->vd INDEX AS FW"
        )
        assert command.view.edge_label == "Wire"
        assert command.view.predicate.is_true
        assert command.directions == (Direction.FORWARD,)

    def test_bw_direction(self):
        command = parse_ddl("CREATE 1-HOP VIEW V MATCH vs-[eadj]->vd INDEX AS BW")
        assert command.directions == (Direction.BACKWARD,)


class TestCreateTwoHopParsing:
    def test_paper_example(self):
        command = parse_ddl(
            "CREATE 2-HOP VIEW MoneyFlow "
            "MATCH vs-[eb]->vd-[eadj]->vnbr "
            "WHERE eb.date<eadj.date, eadj.amt<eb.amt "
            "INDEX AS PARTITION BY eadj.label SORT BY vnbr.city"
        )
        assert isinstance(command, CreateTwoHopCommand)
        assert command.view.adjacency is EdgeAdjacencyType.DST_FW
        assert command.config.sort_keys == (SortKey.nbr_property("city"),)

    @pytest.mark.parametrize(
        "pattern,adjacency",
        [
            ("vs-[eb]->vd-[eadj]->vnbr", EdgeAdjacencyType.DST_FW),
            ("vs-[eb]->vd<-[eadj]-vnbr", EdgeAdjacencyType.DST_BW),
            ("vnbr-[eadj]->vs-[eb]->vd", EdgeAdjacencyType.SRC_FW),
            ("vnbr<-[eadj]-vs-[eb]->vd", EdgeAdjacencyType.SRC_BW),
        ],
    )
    def test_adjacency_types_from_match_shape(self, pattern, adjacency):
        command = parse_ddl(
            f"CREATE 2-HOP VIEW V MATCH {pattern} WHERE eb.date<eadj.date "
            "INDEX AS PARTITION BY eadj.label"
        )
        assert command.view.adjacency is adjacency

    def test_unrecognized_pattern_raises(self):
        with pytest.raises(DDLParseError):
            parse_ddl("CREATE 2-HOP VIEW V MATCH va-[x]->vb WHERE x.a<y.b")

    def test_unknown_command_raises(self):
        with pytest.raises(DDLParseError):
            parse_ddl("DROP EVERYTHING")


class TestDDLThroughDatabase:
    def test_reconfigure_through_database(self, example_graph):
        db = Database(example_graph)
        result = db.execute_ddl(
            "RECONFIGURE PRIMARY INDEXES PARTITION BY eadj.label, eadj.currency "
            "SORT BY vnbr.city"
        )
        assert result.seconds >= 0
        assert len(db.primary_index.config.partition_keys) == 2

    def test_create_one_hop_through_database(self, example_graph):
        db = Database(example_graph)
        result = db.execute_ddl(
            "CREATE 1-HOP VIEW UsdWires MATCH vs-[eadj:Wire]->vd "
            "WHERE eadj.currency = USD "
            "INDEX AS FW-BW PARTITION BY eadj.label SORT BY vnbr.ID"
        )
        assert len(result.names) == 2
        assert set(db.store.secondary_index_names()) >= set(result.names)

    def test_create_two_hop_through_database(self, example_graph):
        db = Database(example_graph)
        result = db.execute_ddl(
            "CREATE 2-HOP VIEW MoneyFlow MATCH vs-[eb]->vd-[eadj]->vnbr "
            "WHERE eb.date<eadj.date, eadj.amt<eb.amt "
            "INDEX AS PARTITION BY eadj.label SORT BY vnbr.city"
        )
        assert result.indexed_edges > 0
        assert "MoneyFlow" in db.store.secondary_index_names()
        db.drop_index("MoneyFlow")
        assert "MoneyFlow" not in db.store.secondary_index_names()
